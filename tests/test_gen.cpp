// Tests for the synthetic graph generators: structural invariants (no self
// loops, no duplicates, in-range endpoints), determinism, and the specific
// shape properties each family promises.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "gen/simple.hpp"
#include "gen/ssca2.hpp"
#include "gen/surrogate.hpp"
#include "graph/csr.hpp"

namespace dg = dlouvain::gen;
using dlouvain::CommunityId;
using dlouvain::Edge;
using dlouvain::VertexId;

namespace {

/// Structural invariants every generator must satisfy.
void expect_wellformed(const dg::GeneratedGraph& g) {
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : g.edges) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, g.num_vertices);
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, g.num_vertices);
    EXPECT_NE(e.src, e.dst) << "self loop from generator";
    const auto key = std::minmax(e.src, e.dst);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate edge " << e.src << "-" << e.dst;
  }
  if (!g.ground_truth.empty()) {
    EXPECT_EQ(g.ground_truth.size(), static_cast<std::size_t>(g.num_vertices));
  }
}

/// Fraction of edges whose endpoints share a ground-truth community.
double intra_fraction(const dg::GeneratedGraph& g) {
  if (g.edges.empty()) return 0;
  std::size_t intra = 0;
  for (const Edge& e : g.edges)
    intra += g.ground_truth[static_cast<std::size_t>(e.src)] ==
                     g.ground_truth[static_cast<std::size_t>(e.dst)]
                 ? 1
                 : 0;
  return static_cast<double>(intra) / static_cast<double>(g.edges.size());
}

}  // namespace

TEST(GenSimple, RingHasNVerticesAndNEdges) {
  const auto g = dg::ring(10);
  expect_wellformed(g);
  EXPECT_EQ(g.num_vertices, 10);
  EXPECT_EQ(g.num_edges(), 10);
}

TEST(GenSimple, RingRejectsTiny) { EXPECT_THROW(dg::ring(2), std::invalid_argument); }

TEST(GenSimple, CliqueChainStructure) {
  const auto g = dg::clique_chain(4, 5);
  expect_wellformed(g);
  EXPECT_EQ(g.num_vertices, 20);
  // 4 cliques of C(5,2)=10 edges + 3 bridges.
  EXPECT_EQ(g.num_edges(), 43);
  // Ground truth: 4 communities of 5.
  std::map<CommunityId, int> sizes;
  for (const auto c : g.ground_truth) ++sizes[c];
  EXPECT_EQ(sizes.size(), 4u);
  for (const auto& [c, s] : sizes) EXPECT_EQ(s, 5);
  // Almost all edges intra-community.
  EXPECT_GT(intra_fraction(g), 0.9);
}

TEST(GenSimple, BandedDegreesAreBounded) {
  const auto g = dg::banded(100, 4);
  expect_wellformed(g);
  const auto csr = dlouvain::graph::from_edges(g.num_vertices, g.edges);
  for (VertexId v = 0; v < 100; ++v) EXPECT_LE(csr.degree(v), 8);
  // Interior vertices have exactly 2*band neighbours.
  EXPECT_EQ(csr.degree(50), 8);
}

TEST(GenSimple, WattsStrogatzKeepsDegreeScale) {
  const auto g = dg::watts_strogatz(500, 8, 0.1, 11);
  expect_wellformed(g);
  // ~n*k/2 edges (rewiring can only drop a few on conflicts).
  EXPECT_GT(g.num_edges(), 500 * 8 / 2 * 0.95);
  EXPECT_LE(g.num_edges(), 500 * 8 / 2);
}

TEST(GenSimple, WattsStrogatzBetaZeroIsLattice) {
  const auto g = dg::watts_strogatz(100, 4, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 200);
  const auto csr = dlouvain::graph::from_edges(g.num_vertices, g.edges);
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(csr.degree(v), 4);
}

TEST(GenSimple, ErdosRenyiEdgeCountNearExpectation) {
  const auto g = dg::erdos_renyi(400, 0.05, 3);
  expect_wellformed(g);
  const double expected = 0.05 * 400 * 399 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
}

TEST(GenSimple, ErdosRenyiZeroProbabilityIsEmpty) {
  EXPECT_EQ(dg::erdos_renyi(50, 0.0, 1).num_edges(), 0);
}

TEST(GenSimple, PlantedPartitionFavorsIntraEdges) {
  const auto g = dg::planted_partition(200, 4, 0.3, 0.01, 5);
  expect_wellformed(g);
  EXPECT_GT(intra_fraction(g), 0.7);
}

TEST(GenSimple, GeneratorsAreDeterministic) {
  const auto a = dg::watts_strogatz(200, 6, 0.2, 99);
  const auto b = dg::watts_strogatz(200, 6, 0.2, 99);
  EXPECT_EQ(a.edges, b.edges);
  const auto c = dg::erdos_renyi(200, 0.03, 42);
  const auto d = dg::erdos_renyi(200, 0.03, 42);
  EXPECT_EQ(c.edges, d.edges);
}

TEST(GenRmat, ProducesSkewedDegrees) {
  dg::RmatParams p;
  p.scale = 10;
  p.edges_per_vertex = 8;
  const auto g = dg::rmat(p);
  expect_wellformed(g);
  const auto csr = dlouvain::graph::from_edges(g.num_vertices, g.edges);
  VertexId max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices; ++v) max_deg = std::max(max_deg, VertexId{csr.degree(v)});
  const double avg = 2.0 * static_cast<double>(g.num_edges()) / static_cast<double>(g.num_vertices);
  // Power-law-ish: hub degree far above the average.
  EXPECT_GT(static_cast<double>(max_deg), 5 * avg);
}

TEST(GenRmat, RejectsBadQuadrants) {
  dg::RmatParams p;
  p.a = 0.9;
  p.b = 0.2;  // sums beyond 1
  p.c = 0.2;
  EXPECT_THROW(dg::rmat(p), std::invalid_argument);
}

TEST(GenSsca2, CliquesDominate) {
  dg::Ssca2Params p;
  p.num_vertices = 2000;
  p.max_clique_size = 20;
  p.inter_clique_prob = 0.01;
  const auto g = dg::ssca2(p);
  expect_wellformed(g);
  EXPECT_GT(intra_fraction(g), 0.9);
  // Clique sizes respect the cap.
  std::map<CommunityId, VertexId> sizes;
  for (const auto c : g.ground_truth) ++sizes[c];
  for (const auto& [c, s] : sizes) EXPECT_LE(s, 20);
}

TEST(GenSsca2, GroundTruthCoversAllVertices) {
  dg::Ssca2Params p;
  p.num_vertices = 500;
  const auto g = dg::ssca2(p);
  EXPECT_EQ(g.ground_truth.size(), 500u);
}

TEST(GenLfr, MixingParameterControlsIntraFraction) {
  for (const double mu : {0.1, 0.3, 0.5}) {
    dg::LfrParams p;
    p.num_vertices = 1000;
    p.avg_degree = 16;
    p.max_degree = 48;
    p.mu = mu;
    p.seed = 17;
    const auto g = dg::lfr(p);
    expect_wellformed(g);
    // Realized intra fraction should track 1 - mu within a loose band
    // (stub rejection shifts it slightly).
    EXPECT_NEAR(intra_fraction(g), 1.0 - mu, 0.12) << "mu=" << mu;
  }
}

TEST(GenLfr, CommunitySizesWithinBounds) {
  dg::LfrParams p;
  p.num_vertices = 2000;
  p.min_community = 25;
  p.max_community = 120;
  const auto g = dg::lfr(p);
  std::map<CommunityId, VertexId> sizes;
  for (const auto c : g.ground_truth) ++sizes[c];
  for (const auto& [c, s] : sizes) {
    EXPECT_GE(s, 25);
    EXPECT_LE(s, 120 + 25);  // final merge may exceed max by < min
  }
}

TEST(GenLfr, AverageDegreeRoughlyMatches) {
  dg::LfrParams p;
  p.num_vertices = 2000;
  p.avg_degree = 20;
  p.max_degree = 60;
  const auto g = dg::lfr(p);
  const double avg = 2.0 * static_cast<double>(g.num_edges()) / static_cast<double>(g.num_vertices);
  EXPECT_NEAR(avg, 20.0, 5.0);
}

TEST(GenLfr, RejectsBadParameters) {
  dg::LfrParams p;
  p.mu = 1.5;
  EXPECT_THROW(dg::lfr(p), std::invalid_argument);
  p = {};
  p.max_community = 5;
  p.min_community = 10;
  EXPECT_THROW(dg::lfr(p), std::invalid_argument);
}

TEST(GenSurrogate, AllCatalogEntriesGenerate) {
  for (const auto& info : dg::table2_catalog()) {
    const auto g = dg::surrogate(info.name, 0.25);
    expect_wellformed(g);
    EXPECT_EQ(g.name, info.name);
    EXPECT_GT(g.num_edges(), 0);
  }
  for (const auto& info : dg::table1_catalog()) {
    const auto g = dg::surrogate(info.name, 0.25);
    expect_wellformed(g);
  }
}

TEST(GenSurrogate, EdgeCountsAscendLikeTable2) {
  // The paper lists Table II in ascending edge order; surrogates keep that
  // order (allowing small noise between adjacent entries of similar size).
  std::vector<dlouvain::EdgeId> counts;
  for (const auto& info : dg::table2_catalog()) counts.push_back(dg::surrogate(info.name).num_edges());
  int inversions = 0;
  for (std::size_t i = 1; i < counts.size(); ++i)
    if (counts[i] < counts[i - 1]) ++inversions;
  EXPECT_LE(inversions, 1) << "surrogate sizes badly out of order";
}

TEST(GenSurrogate, ScaleGrowsTheGraph) {
  const auto small = dg::surrogate("channel", 0.5);
  const auto large = dg::surrogate("channel", 2.0);
  EXPECT_GT(large.num_vertices, 2 * small.num_vertices);
}

TEST(GenSurrogate, UnknownNameThrows) {
  EXPECT_THROW(dg::surrogate("no-such-graph"), std::invalid_argument);
}
