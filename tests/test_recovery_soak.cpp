// Recovery-ladder soak tier (`ctest -L recovery_soak`): seeded fault
// scenarios swept across all three rungs of the graduated recovery ladder
// (docs/FAULT_TOLERANCE.md) on an RMAT fixture.
//
// The contract pinned here, matching the PR's acceptance bar:
//   * wire faults at or below the escalation threshold (loss + corruption
//     with a retransmit budget) are absorbed ENTIRELY by rung 1 -- zero
//     whole-run restarts (recovery.attempts == 1), results bitwise-identical
//     to the clean run at every thread count;
//   * a transient crash on top of the lossy wire costs exactly the one
//     restart the crash demands, never more;
//   * a permanent rank death with shrink enabled auto-resumes at p-1 ranks
//     and matches a user-initiated clean p-1 resume bit for bit;
//   * faults ABOVE the threshold escalate loudly instead of spinning.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "comm/fault.hpp"
#include "comm/mailbox.hpp"
#include "dlouvain.hpp"
#include "gen/rmat.hpp"
#include "graph/csr.hpp"

namespace dc = dlouvain::comm;
namespace dg = dlouvain::graph;
namespace gen = dlouvain::gen;

namespace {

dg::Csr soak_graph() {
  gen::RmatParams p;
  p.scale = 8;
  p.edges_per_vertex = 6;
  p.seed = 23;
  const auto g = gen::rmat(p);
  return dg::from_edges(g.num_vertices, g.edges);
}

std::filesystem::path fresh_dir(const std::string& name) {
  auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

TEST(RecoverySoak, WireFaultSweepAbsorbedWithZeroRestarts) {
  // Loss + corruption at the acceptance rate (0.1% per message) across fault
  // seeds and thread counts: every scenario must complete in one attempt
  // with the clean run's exact bits, with rung 1 doing all the work.
  const auto g = soak_graph();
  const int p = 4;
  for (const int threads : {1, 4, 16}) {
    const auto clean = dlouvain::Plan::distributed(p).threads(threads).run(g);
    for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      const auto noisy = dlouvain::Plan::distributed(p)
                             .threads(threads)
                             .retransmit(8, /*backoff_ms=*/0.2)
                             .inject_faults(dc::FaultPlan()
                                                .with_seed(seed)
                                                .lose(0.001)
                                                .corrupt(0.001))
                             .run(g);
      const auto label = "seed=" + std::to_string(seed) +
                         " threads=" + std::to_string(threads);
      EXPECT_EQ(noisy.recovery.attempts, 1) << label;
      EXPECT_EQ(noisy.community, clean.community) << label;
      EXPECT_EQ(noisy.modularity, clean.modularity) << label;
      EXPECT_EQ(noisy.recovery.escalations, 0) << label;
      // Below the threshold every injected wire fault is repaired by a
      // retransmission, never by a restart.
      EXPECT_GE(noisy.recovery.retransmits,
                noisy.recovery.injected_losses > 0 ? 1 : 0)
          << label;
      EXPECT_EQ(noisy.recovery.shrinks, 0) << label;
    }
  }
}

TEST(RecoverySoak, TransientCrashOnLossyWireCostsExactlyOneRestart) {
  // Rungs 1 and "restart" together: the crash forces one checkpoint resume,
  // the wire faults must still be absorbed silently on BOTH attempts.
  const auto g = soak_graph();
  const int p = 4;
  const auto clean = dlouvain::Plan::distributed(p).run(g);
  const auto dir = fresh_dir("dl_soak_mixed");
  const auto result = dlouvain::Plan::distributed(p)
                          .checkpointing(dir.string())
                          .retransmit(8, /*backoff_ms=*/0.2)
                          .inject_faults(dc::FaultPlan()
                                             .with_seed(5)
                                             .lose(0.001)
                                             .corrupt(0.001)
                                             .crash(2, 1))
                          .max_restarts(1)
                          .run(g);
  EXPECT_EQ(result.recovery.attempts, 2);  // the crash and nothing else
  EXPECT_EQ(result.community, clean.community);
  EXPECT_EQ(result.modularity, clean.modularity);
  EXPECT_EQ(result.recovery.escalations, 0);
  std::filesystem::remove_all(dir);
}

TEST(RecoverySoak, ManifestCarriesTheLadderTelemetry) {
  // The run manifest (schema v3) must expose what the ladder did: the
  // arq.* counter catalog entries and the recovery.ladder section.
  const auto g = soak_graph();
  const auto manifest =
      std::filesystem::temp_directory_path() / "dl_soak_manifest.json";
  std::filesystem::remove(manifest);
  const auto result = dlouvain::Plan::distributed(4)
                          .retransmit(8, /*backoff_ms=*/0.2)
                          .inject_faults(dc::FaultPlan().with_seed(7).lose(0.005))
                          .metrics(manifest.string())
                          .run(g);
  ASSERT_GT(result.recovery.retransmits, 0) << "fixture injected no losses";
  const auto json = slurp(manifest);
  for (const char* key :
       {"\"schema\":\"dlouvain-run-manifest/5\"", "\"arq.nacks\":",
        "\"arq.retransmits\":", "\"arq.backoff_ms\":", "\"arq.escalations\":",
        "\"heartbeat.slow_extensions\":", "\"ladder\":{", "\"injected_losses\":",
        "\"verdicts_dead\":", "\"final_ranks\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // The manifest's ladder must agree with the in-memory result, not be a
  // second bookkeeping path that can drift.
  EXPECT_NE(json.find("\"retransmits\":" +
                      std::to_string(result.recovery.retransmits)),
            std::string::npos);
  std::filesystem::remove(manifest);
}

TEST(RecoverySoak, PermanentDeathShrinksAndMatchesCleanResume) {
  // Rung 3 under soak: stage a phase-1 checkpoint, take the clean p-1
  // resume as the reference trajectory, then require the kill + shrink path
  // to reproduce it bitwise.
  const auto g = soak_graph();
  const int p = 4;

  const auto setup = fresh_dir("dl_soak_shrink_setup");
  EXPECT_THROW((void)dlouvain::Plan::distributed(p)
                   .checkpointing(setup.string())
                   .inject_faults(dc::FaultPlan().crash(3, 1))
                   .max_restarts(0)
                   .run(g),
               dc::RankCrashed);
  const auto reference =
      dlouvain::Plan::distributed(p - 1).resume(setup.string()).run(g);

  const auto dir = fresh_dir("dl_soak_shrink_auto");
  const auto result = dlouvain::Plan::distributed(p)
                          .checkpointing(dir.string())
                          .inject_faults(dc::FaultPlan().kill(3, 1))
                          .shrink_on_rank_loss()
                          .max_restarts(2)
                          .run(g);
  EXPECT_EQ(result.community, reference.community);
  EXPECT_EQ(result.modularity, reference.modularity);
  EXPECT_EQ(result.recovery.verdicts_dead, 1);
  EXPECT_EQ(result.recovery.shrinks, 1);
  EXPECT_EQ(result.recovery.final_ranks, p - 1);
  std::filesystem::remove_all(setup);
  std::filesystem::remove_all(dir);
}

TEST(RecoverySoak, FaultsAboveTheThresholdEscalateLoudly) {
  // Total loss with a tiny budget: rung 1 must give up after its bounded
  // retries and surface the escalation instead of retrying forever.
  const auto g = soak_graph();
  try {
    (void)dlouvain::Plan::distributed(2)
        .retransmit(2, /*backoff_ms=*/0.1)
        .inject_faults(dc::FaultPlan().lose(1.0))
        .max_restarts(0)
        .run(g);
    FAIL() << "expected CommFailure";
  } catch (const dc::CommFailure& e) {
    EXPECT_NE(std::string(e.what()).find("retransmit budget exhausted"),
              std::string::npos)
        << e.what();
  }
}
