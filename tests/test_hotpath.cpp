// PR3 hot-path overhaul guarantees, pinned as tests:
//
//  * fixed-seed results are BITWISE identical to the pre-overhaul (hash-map
//    kernel, full-refetch ledger, dense-only exchange) implementation --
//    golden constants below were captured from that implementation;
//  * thread counts 1/4/16 never change a single bit (the PR 1 contract,
//    re-verified on the flat kernels);
//  * the ghost-exchange wire format (dense / delta / auto) never changes
//    results -- not the assignment, not a modularity bit, not a checkpoint
//    byte -- even under fault-injection delay and duplication plans.
//
// To regenerate the golden constants after an INTENDED algorithmic change:
// run each Plan below and print util::crc32 of the community vector plus
// std::bit_cast<uint64_t> of the modularity.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "comm/world.hpp"
#include "core/ghost_exchange.hpp"
#include "dlouvain.hpp"
#include "gen/rmat.hpp"
#include "gen/ssca2.hpp"
#include "graph/csr.hpp"
#include "graph/dist_graph.hpp"
#include "util/crc32.hpp"

namespace {

using namespace dlouvain;
namespace dc = dlouvain::comm;
namespace dg = dlouvain::graph;

graph::Csr rmat10() {
  gen::RmatParams p;
  p.scale = 10;
  p.edges_per_vertex = 8;
  p.seed = 42;
  const auto g = gen::rmat(p);
  return graph::from_edges(g.num_vertices, g.edges);
}

graph::Csr ssca2k() {
  gen::Ssca2Params p;
  p.num_vertices = 2000;
  p.max_clique_size = 25;
  p.inter_clique_prob = 0.01;
  const auto g = gen::ssca2(p);
  return graph::from_edges(g.num_vertices, g.edges);
}

std::uint32_t crc_of(const std::vector<CommunityId>& v) {
  return util::crc32(v.data(), v.size() * sizeof(CommunityId));
}

std::uint64_t bits_of(double x) { return std::bit_cast<std::uint64_t>(x); }

struct Golden {
  std::uint64_t modularity_bits;
  std::uint32_t community_crc;
  CommunityId num_communities;
  int phases;
  long iterations;
};

void expect_golden(const Result& r, const Golden& want, const std::string& label) {
  EXPECT_EQ(bits_of(r.modularity), want.modularity_bits) << label;
  EXPECT_EQ(crc_of(r.community), want.community_crc) << label;
  EXPECT_EQ(r.num_communities, want.num_communities) << label;
  EXPECT_EQ(r.phases, want.phases) << label;
  EXPECT_EQ(r.total_iterations, want.iterations) << label;
}

// Captured from the pre-PR3 implementation (RMAT scale 10, epv 8, graph seed
// 42; SSCA2 n=2000 clique 25 p=0.01; all plans .seed(123)).
constexpr Golden kSerialRmat{0x3fc65df4311c433eULL, 0x56659c72u, 224, 5, 18};
constexpr Golden kSharedRmat{0x3fc6f6ff9929a4ecULL, 0x95eddb9cu, 225, 4, 21};
constexpr Golden kDistP1Rmat{0x3fc68495206dc15cULL, 0xe8144548u, 225, 4, 20};
// Re-baselined for ISSUE 5: the interior-first sweep schedule reorders the
// multi-rank sweep (interior vertices before boundary, pre-refresh interior
// decisions), so p>1 results changed once. p=1 constants above are untouched
// -- on one rank every vertex is interior and the schedule is the seed's.
constexpr Golden kDistP4Rmat{0x3fc41f2c83fa1be6ULL, 0xa7beaffcu, 223, 5, 22};
constexpr Golden kDistP4Ssca{0x3fef5fedcefcb7b3ULL, 0x271ea84au, 92, 4, 10};
constexpr Golden kDistP4EtcRmat{0x3fc5320bfcf4eeb4ULL, 0x2893ab57u, 225, 5, 25};
constexpr Golden kDistP2TcRmat{0x3fc65be14dc1851fULL, 0x158f0e83u, 226, 5, 21};

TEST(GoldenSeed, SerialMatchesPreOverhaulBits) {
  expect_golden(Plan::serial().seed(123).run(rmat10()), kSerialRmat, "serial");
}

TEST(GoldenSeed, SharedMatchesAcrossThreadCounts) {
  const auto g = rmat10();
  for (const int threads : {1, 4, 16}) {
    expect_golden(Plan::shared(threads).seed(123).run(g), kSharedRmat,
                  "shared t" + std::to_string(threads));
  }
}

TEST(GoldenSeed, DistributedMatchesAcrossThreadCounts) {
  const auto g = rmat10();
  for (const int threads : {1, 4, 16}) {
    const auto label = " t" + std::to_string(threads);
    expect_golden(Plan::distributed(1).threads(threads).seed(123).run(g),
                  kDistP1Rmat, "dist p1" + label);
    expect_golden(Plan::distributed(4).threads(threads).seed(123).run(g),
                  kDistP4Rmat, "dist p4" + label);
  }
}

TEST(GoldenSeed, DistributedVariantsMatch) {
  const auto g = rmat10();
  expect_golden(Plan::distributed(4)
                    .threads(1)
                    .seed(123)
                    .variant(Variant::kEtc)
                    .alpha(0.25)
                    .run(g),
                kDistP4EtcRmat, "dist p4 etc");
  expect_golden(Plan::distributed(2)
                    .threads(2)
                    .seed(123)
                    .variant(Variant::kThresholdCycling)
                    .run(g),
                kDistP2TcRmat, "dist p2 tc");
}

// ---- exchange-mode invariance ----------------------------------------------

TEST(ExchangeModes, EveryModeMatchesTheGoldenBits) {
  const auto ga = rmat10();
  const auto gb = ssca2k();
  for (const auto mode : {GhostExchangeMode::kDense, GhostExchangeMode::kDelta,
                          GhostExchangeMode::kAuto}) {
    const auto label = core::exchange_mode_label(mode);
    expect_golden(Plan::distributed(4).threads(1).seed(123).exchange(mode).run(ga),
                  kDistP4Rmat, "rmat10 " + label);
    expect_golden(Plan::distributed(4).threads(1).seed(123).exchange(mode).run(gb),
                  kDistP4Ssca, "ssca2 " + label);
  }
}

TEST(ExchangeModes, DeltaSurvivesDelayAndDuplicationFaults) {
  const auto g = rmat10();
  const auto faults = comm::FaultPlan().with_seed(11).delay(0.05, 0.5).duplicate(0.05);
  for (const auto mode : {GhostExchangeMode::kDense, GhostExchangeMode::kDelta}) {
    expect_golden(Plan::distributed(4)
                      .threads(1)
                      .seed(123)
                      .exchange(mode)
                      .inject_faults(faults)
                      .run(g),
                  kDistP4Rmat, "faulty " + core::exchange_mode_label(mode));
  }
}

TEST(ExchangeModes, GhostFieldContentsAgreeUnderFaultyComm) {
  // Field-level equivalence: dense and delta exchanges leave identical slot
  // contents even when the transport delays and duplicates messages.
  gen::RmatParams p;
  p.scale = 7;
  p.edges_per_vertex = 8;
  p.seed = 9;
  const auto g = gen::rmat(p);
  const auto csr = graph::from_edges(g.num_vertices, g.edges);

  dc::RunOptions options;
  options.faults = std::make_shared<dc::FaultInjector>(
      dc::FaultPlan().with_seed(5).delay(0.1, 0.3).duplicate(0.1));
  dc::run(
      3,
      [&](dc::Comm& comm) {
        const auto dist = dg::DistGraph::from_replicated(comm, csr);
        core::GhostField<std::int64_t> dense_field(dist, -1);
        core::GhostField<std::int64_t> delta_field(dist, -1);
        core::GhostExchangeConfig dense_cfg;
        dense_cfg.mode = GhostExchangeMode::kDense;
        core::GhostExchangeConfig delta_cfg;
        delta_cfg.mode = GhostExchangeMode::kDelta;

        std::vector<std::int64_t> owned(static_cast<std::size_t>(dist.local_count()));
        for (int round = 0; round < 4; ++round) {
          // A changing-but-deterministic owned pattern: only every (round+2)-th
          // vertex moves between rounds.
          for (VertexId lv = 0; lv < dist.local_count(); ++lv) {
            const auto gv = dist.to_global(lv);
            owned[static_cast<std::size_t>(lv)] =
                gv % (round + 2) == 0 ? 1000 * round + gv : gv;
          }
          dense_field.exchange(comm, owned, dense_cfg);
          delta_field.exchange(comm, owned, delta_cfg);
          ASSERT_EQ(dense_field.values(), delta_field.values()) << "round " << round;
          ASSERT_EQ(dense_field.last_changes().size(),
                    delta_field.last_changes().size())
              << "round " << round;
        }
      },
      options);
}

// ---- checkpoint byte-identity across modes ----------------------------------

std::vector<std::pair<std::string, std::vector<char>>> snapshot_dir(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::string, std::vector<char>>> files;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    // counters.bin carries wall-clock seconds and wire-mode-dependent byte
    // counts (delta mode legitimately ships fewer bytes), so it is excluded
    // from the byte-identity contract; meta/graph/chain must still match.
    if (entry.path().filename() == "counters.bin") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    files.emplace_back(entry.path().lexically_relative(dir).string(),
                       std::vector<char>(std::istreambuf_iterator<char>(in),
                                         std::istreambuf_iterator<char>()));
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ExchangeModes, CheckpointsAreByteIdenticalAcrossModes) {
  const auto g = rmat10();
  const auto base = std::filesystem::temp_directory_path() / "dlel_ckpt_modes";
  std::filesystem::remove_all(base);

  std::vector<std::vector<std::pair<std::string, std::vector<char>>>> snapshots;
  for (const auto mode : {GhostExchangeMode::kDense, GhostExchangeMode::kDelta,
                          GhostExchangeMode::kAuto}) {
    const auto dir = base / core::exchange_mode_label(mode);
    const auto result = Plan::distributed(2)
                            .threads(1)
                            .seed(123)
                            .exchange(mode)
                            .checkpointing(dir.string(), 1)
                            .run(g);
    EXPECT_GT(result.phases, 1);
    snapshots.push_back(snapshot_dir(dir));
  }
  ASSERT_FALSE(snapshots[0].empty());
  EXPECT_EQ(snapshots[0], snapshots[1]) << "dense vs delta checkpoint bytes";
  EXPECT_EQ(snapshots[0], snapshots[2]) << "dense vs auto checkpoint bytes";
  std::filesystem::remove_all(base);
}

}  // namespace
