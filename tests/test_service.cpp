// Service-layer tests (ISSUE 9): the DLSV frame codec, the JobScheduler's
// admission / LRU cache / in-flight de-duplication / drain contract, and
// the socket endpoint end to end. The headline property (satellite 4): N
// parallel identical jobs cost exactly 1 computation and produce N
// byte-identical manifests, and a drain never drops a response.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "gen/simple.hpp"
#include "graph/csr.hpp"
#include "service/endpoint.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"

namespace gen = dlouvain::gen;
namespace dg = dlouvain::graph;
namespace svc = dlouvain::service;
using dlouvain::Edge;
using dlouvain::VertexId;

namespace {

svc::JobRequest karate_job(int ranks = 2, std::uint64_t seed = 7777) {
  svc::JobRequest req;
  req.config.ranks = ranks;
  req.config.seed = seed;
  const auto g = gen::karate_club();
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  req.num_vertices = csr.num_vertices();
  req.edges = svc::canonical_edges(csr);
  return req;
}

/// The reply manifest without its response-specific "service" section --
/// the bytes that must be identical across a leader and its cache hits.
std::string strip_service(const std::string& manifest) {
  const auto pos = manifest.find(",\"service\":");
  EXPECT_NE(pos, std::string::npos) << "no service section in: " << manifest;
  return manifest.substr(0, pos);
}

bool service_field_true(const std::string& manifest, const std::string& field) {
  return manifest.find("\"" + field + "\":true") != std::string::npos;
}

}  // namespace

// ---- wire format ------------------------------------------------------------

TEST(Protocol, WireRoundTrip) {
  svc::WireWriter w;
  w.put_u8(7);
  w.put_u32(0xdeadbeef);
  w.put_u64(1ull << 60);
  w.put_i32(-42);
  w.put_i64(-(1ll << 50));
  w.put_f64(0.1);
  w.put_string("hello");
  svc::WireReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 1ull << 60);
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_EQ(r.get_i64(), -(1ll << 50));
  EXPECT_EQ(r.get_f64(), 0.1);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Protocol, ReaderRejectsOverrunAndTrailingJunk) {
  svc::WireWriter w;
  w.put_u32(1);
  svc::WireReader r(w.bytes());
  EXPECT_THROW(r.get_u64(), svc::ProtocolError);  // only 4 bytes present
  svc::WireReader r2(w.bytes());
  EXPECT_THROW(r2.expect_end(), svc::ProtocolError);  // unconsumed bytes
}

TEST(Protocol, FrameRoundTrip) {
  const auto frame = svc::encode_frame(svc::FrameType::kManifest, std::string_view("{\"a\":1}"));
  std::size_t consumed = 0;
  const svc::Frame decoded = svc::decode_frame(frame, consumed);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded.type, svc::FrameType::kManifest);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(decoded.payload.data()),
                        decoded.payload.size()),
            "{\"a\":1}");
}

TEST(Protocol, FrameDetectsCorruption) {
  auto frame = svc::encode_frame(svc::FrameType::kSubmit, std::string_view("payload"));
  std::size_t consumed = 0;

  auto flipped = frame;
  flipped[svc::kFrameHeaderBytes] ^= std::byte{0x01};  // payload bit flip
  EXPECT_THROW(svc::decode_frame(flipped, consumed), svc::ProtocolError);

  auto bad_type = frame;
  bad_type[8] ^= std::byte{0x40};  // header (type) bit flip -- CRC covers it
  EXPECT_THROW(svc::decode_frame(bad_type, consumed), svc::ProtocolError);

  auto bad_magic = frame;
  bad_magic[0] = std::byte{0x00};
  EXPECT_THROW(svc::decode_frame(bad_magic, consumed), svc::ProtocolError);

  EXPECT_THROW(svc::decode_frame(std::span<const std::byte>(frame).first(10), consumed),
               svc::ProtocolError);
}

TEST(Protocol, FrameEnforcesMaxPayload) {
  const auto frame = svc::encode_frame(svc::FrameType::kSubmit, std::string_view("0123456789"));
  std::size_t consumed = 0;
  EXPECT_THROW(svc::decode_frame(frame, consumed, /*max_payload=*/4), svc::ProtocolError);
}

TEST(Protocol, JobRequestRoundTrip) {
  svc::JobRequest req = karate_job(3, 99);
  req.config.variant = 3;
  req.config.alpha = 0.5;
  req.config.threads = 2;
  req.session_name = "sess";
  const auto payload = svc::encode_job_request(req);
  const svc::JobRequest back = svc::decode_job_request(payload);
  EXPECT_EQ(back.config.ranks, 3);
  EXPECT_EQ(back.config.seed, 99u);
  EXPECT_EQ(back.config.variant, 3);
  EXPECT_EQ(back.config.alpha, 0.5);
  EXPECT_EQ(back.config.threads, 2);
  EXPECT_EQ(back.session_name, "sess");
  EXPECT_EQ(back.num_vertices, req.num_vertices);
  EXPECT_EQ(back.edges, req.edges);
}

TEST(Protocol, UpdateRequestRoundTrip) {
  svc::UpdateRequest req;
  req.session_name = "s1";
  req.changes.push_back(dg::EdgeChange{1, 2, 2.5, false});
  req.changes.push_back(dg::EdgeChange{3, 4, 0.0, true});
  const auto payload = svc::encode_update_request(req);
  const svc::UpdateRequest back = svc::decode_update_request(payload);
  EXPECT_EQ(back.session_name, "s1");
  EXPECT_EQ(back.changes, req.changes);
}

TEST(Protocol, HostileEdgeCountRejectedBeforeAllocation) {
  svc::JobRequest req = karate_job();
  auto payload = svc::encode_job_request(req);
  // The edge-count u64 sits right before the edge records: claim 2^56 edges.
  const std::size_t count_at = payload.size() - req.edges.size() * 24 - 8;
  const std::uint64_t huge = 1ull << 56;
  std::memcpy(payload.data() + count_at, &huge, sizeof huge);
  EXPECT_THROW(svc::decode_job_request(payload), svc::ProtocolError);
}

// ---- scheduler: cache, de-dup, admission ------------------------------------

TEST(Scheduler, ParallelIdenticalJobsComputeOnceBitwiseIdentical) {
  svc::JobScheduler sched(svc::SchedulerOptions{.workers = 2});
  constexpr int kJobs = 4;
  std::vector<std::future<svc::Reply>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) futures.push_back(sched.submit(karate_job()));

  std::vector<std::string> bodies;
  int hits = 0;
  for (auto& f : futures) {
    svc::Reply r = f.get();
    ASSERT_EQ(r.type, svc::FrameType::kManifest) << r.body;
    if (service_field_true(r.body, "cache_hit")) ++hits;
    bodies.push_back(strip_service(r.body));
  }
  // Exactly one computation: N-1 responses are cache hits (waiters on the
  // in-flight leader or hits on the finished cache line -- both count).
  EXPECT_EQ(hits, kJobs - 1);
  for (int i = 1; i < kJobs; ++i)
    EXPECT_EQ(bodies[0], bodies[i]) << "manifests diverge at job " << i;

  const auto stats = sched.stats();
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, kJobs - 1);
  EXPECT_EQ(stats.jobs_served, kJobs);
}

TEST(Scheduler, CacheKeyHonoursConfigAndRanksButNotThreads) {
  svc::JobScheduler sched(svc::SchedulerOptions{.workers = 1});
  EXPECT_EQ(sched.submit(karate_job(2, 7777)).get().type, svc::FrameType::kManifest);

  // Different seed -> different trajectory -> miss.
  EXPECT_FALSE(service_field_true(sched.submit(karate_job(2, 1234)).get().body, "cache_hit"));
  // Different rank count -> different results -> miss.
  EXPECT_FALSE(service_field_true(sched.submit(karate_job(3, 7777)).get().body, "cache_hit"));
  // Different thread count -> SAME results (determinism contract) -> hit.
  svc::JobRequest threaded = karate_job(2, 7777);
  threaded.config.threads = 4;
  EXPECT_TRUE(service_field_true(sched.submit(threaded).get().body, "cache_hit"));
}

TEST(Scheduler, RejectsBadPlansAndBadGraphsWithErrorReplies) {
  svc::JobScheduler sched(svc::SchedulerOptions{.workers = 1, .max_ranks = 4});

  svc::JobRequest too_many_ranks = karate_job(9);
  EXPECT_EQ(sched.submit(std::move(too_many_ranks)).get().type, svc::FrameType::kError);

  svc::JobRequest bad_variant = karate_job();
  bad_variant.config.variant = 200;
  EXPECT_EQ(sched.submit(std::move(bad_variant)).get().type, svc::FrameType::kError);

  svc::JobRequest bad_plan = karate_job();
  bad_plan.config.threshold = -1.0;
  const svc::Reply plan_reply = sched.submit(std::move(bad_plan)).get();
  EXPECT_EQ(plan_reply.type, svc::FrameType::kError);
  EXPECT_NE(plan_reply.body.find("invalid plan"), std::string::npos) << plan_reply.body;

  // Out-of-range endpoint is only detectable at build time: still a reply,
  // never a crash or a dropped request.
  svc::JobRequest bad_edge = karate_job();
  bad_edge.edges.push_back(Edge{0, 10'000, 1.0});
  EXPECT_EQ(sched.submit(std::move(bad_edge)).get().type, svc::FrameType::kError);

  EXPECT_EQ(sched.stats().rejected, 3);  // the bad edge is a failed job, not a rejection
}

TEST(Scheduler, DrainCompletesEveryAdmittedJobThenRefuses) {
  svc::JobScheduler sched(svc::SchedulerOptions{.workers = 2});
  std::vector<std::future<svc::Reply>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(sched.submit(karate_job(2, 1000 + static_cast<std::uint64_t>(i))));
  sched.drain();
  // Every job admitted before the drain still produced its reply.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get().type, svc::FrameType::kManifest);
  }
  // Admission after the drain answers immediately with a draining error.
  svc::Reply refused = sched.submit(karate_job()).get();
  EXPECT_EQ(refused.type, svc::FrameType::kError);
  EXPECT_NE(refused.body.find("draining"), std::string::npos);

  const std::string manifest = sched.final_manifest();
  EXPECT_NE(manifest.find("\"schema\":\"dlouvain-service-manifest/1\""), std::string::npos);
  EXPECT_NE(manifest.find("\"drain\":\"clean\""), std::string::npos);
}

TEST(Scheduler, NamedSessionLifecycle) {
  svc::JobScheduler sched(svc::SchedulerOptions{.workers = 2});

  svc::JobRequest open = karate_job();
  open.session_name = "k";
  const svc::Reply opened = sched.open_session(open).get();
  ASSERT_EQ(opened.type, svc::FrameType::kManifest) << opened.body;
  EXPECT_NE(opened.body.find("\"sessions_open\":1"), std::string::npos);

  // Same name again: refused while resident.
  EXPECT_EQ(sched.open_session(open).get().type, svc::FrameType::kError);

  svc::UpdateRequest upd;
  upd.session_name = "k";
  upd.changes.push_back(dg::EdgeChange{0, 20, 1.0, false});
  const svc::Reply updated = sched.update_session(upd).get();
  ASSERT_EQ(updated.type, svc::FrameType::kManifest) << updated.body;
  EXPECT_NE(updated.body.find("\"batches_applied\":1"), std::string::npos);

  upd.session_name = "nope";
  EXPECT_EQ(sched.update_session(upd).get().type, svc::FrameType::kError);

  EXPECT_EQ(sched.close_session("k").get().type, svc::FrameType::kStatsReply);
  EXPECT_EQ(sched.stats().sessions_open, 0);
  // Closed name is free again.
  EXPECT_EQ(sched.open_session(open).get().type, svc::FrameType::kManifest);
}

TEST(Scheduler, UpdateQueuedBehindOpenWaitsForIt) {
  // The update is admitted while the open is still queued/running; it must
  // wait for the session to become ready, not fail or race.
  svc::JobScheduler sched(svc::SchedulerOptions{.workers = 2});
  svc::JobRequest open = karate_job();
  open.session_name = "s";
  auto open_future = sched.open_session(open);
  svc::UpdateRequest upd;
  upd.session_name = "s";
  upd.changes.push_back(dg::EdgeChange{0, 21, 1.0, false});
  auto upd_future = sched.update_session(upd);
  EXPECT_EQ(open_future.get().type, svc::FrameType::kManifest);
  EXPECT_EQ(upd_future.get().type, svc::FrameType::kManifest);
}

// ---- endpoint: the full socket path -----------------------------------------

namespace {

/// Endpoint + scheduler over a real Unix socket in the working directory
/// (relative path: sockaddr_un's 108-byte limit).
struct LiveService {
  svc::JobScheduler scheduler;
  svc::ServiceEndpoint endpoint;
  std::string path;

  explicit LiveService(const std::string& socket_name)
      : scheduler(svc::SchedulerOptions{.workers = 2}),
        endpoint(svc::EndpointOptions{.unix_path = socket_name}, scheduler),
        path(socket_name) {
    endpoint.start();
  }
};

}  // namespace

TEST(Endpoint, ConcurrentClientsOneDuplicateOneCacheHit) {
  LiveService live("svc_e2e.sock");

  // Three concurrent jobs over three connections, two of them identical --
  // the ISSUE 9 acceptance scenario, minus the process boundary (the ctest
  // service_smoke tier adds that via tools/service_smoke.py).
  const auto call = [&](svc::JobRequest req) {
    auto client = svc::ServiceClient::connect_unix(live.path);
    const auto payload = svc::encode_job_request(req);
    const svc::Frame reply = client.call(svc::FrameType::kSubmit, payload);
    return std::string(reinterpret_cast<const char*>(reply.payload.data()),
                       reply.payload.size());
  };
  std::future<std::string> a = std::async(std::launch::async, call, karate_job());
  std::future<std::string> b = std::async(std::launch::async, call, karate_job());
  std::future<std::string> c = std::async(std::launch::async, call, karate_job(3));
  const std::string ma = a.get(), mb = b.get(), mc = c.get();

  EXPECT_EQ(strip_service(ma), strip_service(mb));
  EXPECT_NE(strip_service(ma), strip_service(mc));
  for (const auto* m : {&ma, &mb, &mc})
    EXPECT_NE(m->find("\"schema\":\"dlouvain-run-manifest/5\""), std::string::npos);

  live.endpoint.stop();
  const auto stats = live.scheduler.stats();
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 2);
  EXPECT_EQ(stats.jobs_served, 3);
  EXPECT_EQ(stats.drain, "clean");
}

TEST(Endpoint, SessionOverSocketAndStats) {
  LiveService live("svc_sess.sock");
  auto client = svc::ServiceClient::connect_unix(live.path);

  svc::JobRequest open = karate_job();
  open.session_name = "sock";
  svc::Frame reply = client.call(svc::FrameType::kOpenSession, svc::encode_job_request(open));
  EXPECT_EQ(reply.type, svc::FrameType::kManifest);

  svc::UpdateRequest upd;
  upd.session_name = "sock";
  upd.changes.push_back(dg::EdgeChange{0, 22, 1.0, false});
  reply = client.call(svc::FrameType::kUpdate, svc::encode_update_request(upd));
  EXPECT_EQ(reply.type, svc::FrameType::kManifest);

  reply = client.call(svc::FrameType::kStats);
  EXPECT_EQ(reply.type, svc::FrameType::kStatsReply);
  const std::string stats(reinterpret_cast<const char*>(reply.payload.data()),
                          reply.payload.size());
  EXPECT_NE(stats.find("\"sessions_open\":1"), std::string::npos) << stats;

  svc::WireWriter w;
  w.put_string("sock");
  reply = client.call(svc::FrameType::kCloseSession, std::span<const std::byte>(w.bytes()));
  EXPECT_EQ(reply.type, svc::FrameType::kStatsReply);
}

TEST(Endpoint, CorruptFrameGetsErrorReplyAndDrop) {
  LiveService live("svc_bad.sock");
  // Raw socket: ship a frame whose payload byte was flipped in transit.
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, live.path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  auto frame = svc::encode_frame(svc::FrameType::kSubmit, std::string_view("junk"));
  frame[svc::kFrameHeaderBytes] ^= std::byte{0xff};
  svc::write_all(fd, frame);
  // The server answers with a best-effort kError frame, then drops us.
  const auto reply = svc::read_frame(fd);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, svc::FrameType::kError);
  const std::string body(reinterpret_cast<const char*>(reply->payload.data()),
                         reply->payload.size());
  EXPECT_NE(body.find("CRC"), std::string::npos) << body;
  EXPECT_FALSE(svc::read_frame(fd).has_value());  // connection dropped
  ::close(fd);
}

TEST(Endpoint, TcpLoopbackWorks) {
  svc::JobScheduler scheduler(svc::SchedulerOptions{.workers = 1});
  svc::ServiceEndpoint endpoint(svc::EndpointOptions{.tcp_port = 0}, scheduler);
  endpoint.start();
  ASSERT_GT(endpoint.port(), 0);
  auto client = svc::ServiceClient::connect_tcp(endpoint.port());
  const svc::Frame reply =
      client.call(svc::FrameType::kSubmit, svc::encode_job_request(karate_job()));
  EXPECT_EQ(reply.type, svc::FrameType::kManifest);
  endpoint.stop();
}
