// Tests for the message-passing runtime: point-to-point semantics,
// every collective, error propagation, and parameterized stress across
// world sizes (including non-powers of two, which exercise the dissemination
// barrier's wraparound).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>

#include "comm/async.hpp"
#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "comm/world.hpp"
#include "util/metrics.hpp"

namespace dc = dlouvain::comm;
using dlouvain::Rank;

TEST(Comm, SingleRankWorldRunsInline) {
  std::atomic<int> calls{0};
  dc::run(1, [&](dc::Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Comm, SendRecvRoundTrip) {
  dc::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 7, std::vector<int>{1, 2, 3});
      const auto back = comm.recv<int>(1, 8);
      EXPECT_EQ(back, (std::vector<int>{4, 5}));
    } else {
      const auto data = comm.recv<int>(0, 7);
      EXPECT_EQ(data, (std::vector<int>{1, 2, 3}));
      comm.send<int>(0, 8, std::vector<int>{4, 5});
    }
  });
}

TEST(Comm, EmptyMessagesAreDeliverable) {
  dc::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 1, std::vector<int>{});
    } else {
      EXPECT_TRUE(comm.recv<int>(0, 1).empty());
    }
  });
}

TEST(Comm, TagMatchingSelectsCorrectMessage) {
  // Send tag-B first, then tag-A; receiver asks for A first. Matching must
  // pick by tag, not arrival order.
  dc::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value<int>(1, 20, 200);
      comm.send_value<int>(1, 10, 100);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 10), 100);
      EXPECT_EQ(comm.recv_value<int>(0, 20), 200);
    }
  });
}

TEST(Comm, SameTagIsFifoPerPair) {
  dc::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) comm.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(comm.recv_value<int>(0, 3), i);
    }
  });
}

TEST(Comm, SendToInvalidRankThrows) {
  EXPECT_THROW(dc::run(2,
                       [](dc::Comm& comm) {
                         if (comm.rank() == 0) comm.send_value<int>(5, 0, 1);
                         else comm.barrier();  // will unwind via WorldAborted
                       }),
               std::out_of_range);
}

TEST(Comm, ExceptionInOneRankPropagates) {
  EXPECT_THROW(dc::run(4,
                       [](dc::Comm& comm) {
                         if (comm.rank() == 2) throw std::runtime_error("boom");
                         // Other ranks block; they must be released, not hang.
                         (void)comm.recv_bytes((comm.rank() + 1) % 4, 99);
                       }),
               std::runtime_error);
}

TEST(Comm, TrafficReportCountsMessages) {
  const auto report = dc::run(2, [](dc::Comm& comm) {
    if (comm.rank() == 0) comm.send<int>(1, 0, std::vector<int>{1, 2, 3, 4});
    else (void)comm.recv<int>(0, 0);
  });
  EXPECT_EQ(report.messages, 1);
  EXPECT_EQ(report.bytes, 16);
}

class CommCollectives : public ::testing::TestWithParam<int> {};

TEST_P(CommCollectives, BarrierCompletes) {
  const int p = GetParam();
  std::atomic<int> arrived{0};
  dc::run(p, [&](dc::Comm& comm) {
    for (int round = 0; round < 5; ++round) comm.barrier();
    ++arrived;
  });
  EXPECT_EQ(arrived.load(), p);
}

TEST_P(CommCollectives, BarrierIsASyncPoint) {
  const int p = GetParam();
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  dc::run(p, [&](dc::Comm& comm) {
    ++before;
    comm.barrier();
    if (before.load() != p) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(CommCollectives, BroadcastDistributesRootBuffer) {
  const int p = GetParam();
  dc::run(p, [](dc::Comm& comm) {
    std::vector<long> data;
    if (comm.rank() == 0) data = {10, 20, 30};
    const auto out = comm.broadcast(std::move(data), 0);
    EXPECT_EQ(out, (std::vector<long>{10, 20, 30}));
  });
}

TEST_P(CommCollectives, BroadcastFromNonZeroRoot) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  dc::run(p, [](dc::Comm& comm) {
    std::vector<int> data;
    if (comm.rank() == 1) data = {7};
    EXPECT_EQ(comm.broadcast(std::move(data), 1), std::vector<int>{7});
  });
}

TEST_P(CommCollectives, AllgatherOrdersByRank) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    const auto all = comm.allgather<int>(comm.rank() * 10);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[r], r * 10);
  });
}

TEST_P(CommCollectives, AllgathervConcatenatesVariableLengths) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    // Rank r contributes r copies of r.
    std::vector<int> mine(comm.rank(), comm.rank());
    std::vector<std::size_t> counts;
    const auto all = comm.allgatherv<int>(mine, &counts);
    std::vector<int> expected;
    for (int r = 0; r < p; ++r) expected.insert(expected.end(), r, r);
    EXPECT_EQ(all, expected);
    for (int r = 0; r < p; ++r) EXPECT_EQ(counts[r], static_cast<std::size_t>(r));
  });
}

TEST_P(CommCollectives, GathervCollectsAtRootOnly) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    std::vector<int> mine{comm.rank(), comm.rank() + 100};
    const auto all = comm.gatherv<int>(mine, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * p));
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(all[2 * r], r);
        EXPECT_EQ(all[2 * r + 1], r + 100);
      }
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CommCollectives, AllreduceSumMatchesClosedForm) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    EXPECT_EQ(comm.allreduce_sum<long>(comm.rank() + 1), static_cast<long>(p) * (p + 1) / 2);
  });
}

TEST_P(CommCollectives, AllreduceSumIsBitwiseIdenticalAcrossRanks) {
  const int p = GetParam();
  // Adversarial doubles: different magnitudes per rank. Every rank must get
  // the exact same bits because folds run in rank order everywhere.
  std::vector<double> results(p);
  dc::run(p, [&](dc::Comm& comm) {
    const double mine = 1.0 / (comm.rank() + 3.0) * 1e10;
    results[comm.rank()] = comm.allreduce_sum(mine);
  });
  for (int r = 1; r < p; ++r) EXPECT_EQ(results[0], results[r]);
}

TEST_P(CommCollectives, AllreduceMinMax) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    EXPECT_EQ(comm.allreduce_max<int>(comm.rank()), p - 1);
    EXPECT_EQ(comm.allreduce_min<int>(comm.rank()), 0);
  });
}

TEST_P(CommCollectives, AllreduceLand) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    EXPECT_TRUE(comm.allreduce_land(true));
    // Rank p-1 votes false, so the conjunction is always false.
    EXPECT_FALSE(comm.allreduce_land(comm.rank() != p - 1));
  });
}

TEST_P(CommCollectives, AllreduceSumVecIsElementwise) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    std::vector<long> mine{comm.rank(), 1, 2 * comm.rank()};
    const auto out = comm.allreduce_sum_vec(mine);
    const long ranksum = static_cast<long>(p) * (p - 1) / 2;
    EXPECT_EQ(out, (std::vector<long>{ranksum, p, 2 * ranksum}));
  });
}

TEST_P(CommCollectives, ExscanMatchesPrefixSums) {
  const int p = GetParam();
  dc::run(p, [](dc::Comm& comm) {
    // Rank r contributes r+1; exscan result is sum 1..r.
    const long r = comm.rank();
    EXPECT_EQ(comm.exscan_sum<long>(r + 1), r * (r + 1) / 2);
    EXPECT_EQ(comm.scan_sum<long>(r + 1), (r + 1) * (r + 2) / 2);
  });
}

TEST_P(CommCollectives, AlltoallvRoutesPersonalizedBuffers) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    // Rank r sends {r*100+d} repeated (d+1) times to rank d.
    std::vector<std::vector<int>> outbox(p);
    for (int d = 0; d < p; ++d) outbox[d].assign(d + 1, comm.rank() * 100 + d);
    const auto inbox = comm.alltoallv<int>(std::move(outbox));
    ASSERT_EQ(inbox.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(inbox[s].size(), static_cast<std::size_t>(comm.rank() + 1));
      for (int x : inbox[s]) EXPECT_EQ(x, s * 100 + comm.rank());
    }
  });
}

TEST_P(CommCollectives, AlltoallExchangesSingleElements) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    std::vector<int> out(p);
    for (int d = 0; d < p; ++d) out[d] = comm.rank() * p + d;
    const auto in = comm.alltoall(out);
    for (int s = 0; s < p; ++s) EXPECT_EQ(in[s], s * p + comm.rank());
  });
}

TEST_P(CommCollectives, BackToBackCollectivesDontCrossMatch) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      EXPECT_EQ(comm.allreduce_sum<int>(round), round * p);
      const auto all = comm.allgather<int>(comm.rank() + round);
      for (int r = 0; r < p; ++r) EXPECT_EQ(all[r], r + round);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CommCollectives,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Comm, ManyRanksStress) {
  // 32 rank-threads doing mixed traffic; mostly a deadlock/interleaving test.
  dc::run(32, [](dc::Comm& comm) {
    const int p = comm.size();
    const Rank next = (comm.rank() + 1) % p;
    const Rank prev = (comm.rank() - 1 + p) % p;
    for (int i = 0; i < 10; ++i) {
      comm.send_value<int>(next, 5, comm.rank() * 1000 + i);
      EXPECT_EQ(comm.recv_value<int>(prev, 5), prev * 1000 + i);
      comm.barrier();
    }
  });
}

// ---- Sub-communicators, sendrecv, tree broadcast (added with comm v2) --------

TEST(CommSplit, EvenOddGroupsWorkIndependently) {
  dc::run(6, [](dc::Comm& comm) {
    auto sub = comm.split(comm.rank() % 2);
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Collectives inside the split see only the group.
    const auto sum = sub.allreduce_sum<int>(comm.rank());
    const int expect = comm.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5;
    EXPECT_EQ(sum, expect);
  });
}

TEST(CommSplit, KeyControlsOrdering) {
  dc::run(4, [](dc::Comm& comm) {
    // Reverse the ranks via the key.
    auto sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
    const auto gathered = sub.allgather<int>(comm.rank());
    EXPECT_EQ(gathered, (std::vector<int>{3, 2, 1, 0}));
  });
}

TEST(CommSplit, ParentAndChildTrafficDoNotMix) {
  dc::run(4, [](dc::Comm& comm) {
    auto sub = comm.split(comm.rank() % 2);
    // Same (src, tag) posted on both communicators; each recv must get its
    // own communicator's message.
    if (comm.rank() == 0) {
      comm.send_value<int>(2, 5, 111);        // world: 0 -> 2
      sub.send_value<int>(1, 5, 222);         // evens: 0 -> (world 2)
    }
    if (comm.rank() == 2) {
      EXPECT_EQ(sub.recv_value<int>(0, 5), 222);
      EXPECT_EQ(comm.recv_value<int>(0, 5), 111);
    }
  });
}

TEST(CommSplit, NestedSplits) {
  dc::run(8, [](dc::Comm& comm) {
    auto half = comm.split(comm.rank() / 4);   // two groups of 4
    auto quarter = half.split(half.rank() / 2);  // four groups of 2
    EXPECT_EQ(quarter.size(), 2);
    const auto sum = quarter.allreduce_sum<int>(1);
    EXPECT_EQ(sum, 2);
  });
}

TEST(CommSplit, SingletonGroups) {
  dc::run(3, [](dc::Comm& comm) {
    auto solo = comm.split(comm.rank());  // every rank its own color
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    EXPECT_EQ(solo.allreduce_sum<int>(41), 41);
    solo.barrier();
  });
}

TEST(Comm, SendrecvExchangesInOneCall) {
  dc::run(4, [](dc::Comm& comm) {
    const int p = comm.size();
    const dlouvain::Rank right = (comm.rank() + 1) % p;
    const dlouvain::Rank left = (comm.rank() - 1 + p) % p;
    const auto got = comm.sendrecv<int>(right, left, 3, std::vector<int>{comm.rank()});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], left);
  });
}

class BroadcastTree : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastTree, EveryRootEveryWorldSize) {
  const int p = GetParam();
  dc::run(p, [p](dc::Comm& comm) {
    for (dlouvain::Rank root = 0; root < p; ++root) {
      std::vector<long> data;
      if (comm.rank() == root) data = {root * 100L, root * 100L + 1};
      const auto out = comm.broadcast(std::move(data), root);
      EXPECT_EQ(out, (std::vector<long>{root * 100L, root * 100L + 1}));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, BroadcastTree, ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(Comm, TagOutsideRangeThrows) {
  dc::run(1, [](dc::Comm& comm) {
    EXPECT_THROW(comm.send_value<int>(0, 1 << 20, 1), std::out_of_range);
  });
}

// ---- Fault layer: timeouts, checksums, duplicate suppression, delays -------

TEST(FaultLayer, HungReceiveThrowsTimeoutWithDiagnostic) {
  // Rank 0 waits for a message rank 1 never sends: a classic deadlock. With
  // a deadline configured, the blocked receive must throw CommTimeout whose
  // message names the blocked (src, tag) instead of hanging forever.
  dc::RunOptions options;
  options.timeout_seconds = 0.2;
  try {
    dc::run(
        2,
        [](dc::Comm& comm) {
          if (comm.rank() == 0) (void)comm.recv_value<int>(1, 42);
          else (void)comm.recv_value<int>(0, 43);  // also stuck, also reported
        },
        options);
    FAIL() << "expected CommTimeout";
  } catch (const dc::CommTimeout& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("blocked on"), std::string::npos) << what;
    EXPECT_NE(what.find("comm timeout"), std::string::npos) << what;
  }
}

TEST(FaultLayer, TimeoutDoesNotFireOnHealthyTraffic) {
  dc::RunOptions options;
  options.timeout_seconds = 5.0;
  const auto report = dc::run(
      3,
      [](dc::Comm& comm) {
        for (int round = 0; round < 20; ++round) {
          comm.barrier();
          (void)comm.allreduce_sum<int>(comm.rank());
        }
      },
      options);
  EXPECT_GT(report.messages, 0);
}

TEST(FaultLayer, DuplicatedMessagesAreAbsorbed) {
  // Duplicate EVERY message: results must be unchanged (sequence numbers
  // drop the copies) and the drop counter must show it happened. A repeated
  // stream on a fixed tag interleaves duplicates with later originals, so
  // the receiver actually encounters (and drops) them; only the final
  // message's duplicate can linger undelivered at shutdown.
  constexpr int kRounds = 25;
  dc::RunOptions options;
  options.faults = std::make_shared<dc::FaultInjector>(dc::FaultPlan().duplicate(1.0));
  std::vector<long> sums(4, -1);
  const auto report = dc::run(
      4,
      [&](dc::Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 0; i < kRounds; ++i) comm.send_value<int>(1, 7, i);
        } else if (comm.rank() == 1) {
          for (int i = 0; i < kRounds; ++i)
            ASSERT_EQ(comm.recv_value<int>(0, 7), i);
        }
        const auto sum = comm.allreduce_sum<long>(comm.rank() + 1);
        sums[static_cast<std::size_t>(comm.rank())] = sum;
      },
      options);
  EXPECT_EQ(sums, (std::vector<long>{10, 10, 10, 10}));
  EXPECT_GE(report.duplicates_dropped, kRounds - 1);
  EXPECT_LE(report.duplicates_dropped, report.injected_duplicates);
}

TEST(FaultLayer, CorruptedPayloadIsDetected) {
  // Corrupt every data-carrying message: the receiver's CRC check must
  // surface CorruptMessage instead of silently delivering garbage.
  dc::RunOptions options;
  options.faults = std::make_shared<dc::FaultInjector>(dc::FaultPlan().corrupt(1.0));
  EXPECT_THROW(dc::run(
                   2,
                   [](dc::Comm& comm) {
                     if (comm.rank() == 0) comm.send_value<int>(1, 5, 12345);
                     else (void)comm.recv_value<int>(0, 5);
                   },
                   options),
               dc::CorruptMessage);
}

TEST(FaultLayer, DelayedDeliveryPreservesResultsAndFifo) {
  // Delay half of all messages (keyed deterministically): per-stream FIFO
  // must hold and every collective must produce the exact same answers.
  dc::RunOptions options;
  options.faults =
      std::make_shared<dc::FaultInjector>(dc::FaultPlan().with_seed(99).delay(0.5, 1.0));
  std::vector<std::vector<int>> gathered(3);
  const auto report = dc::run(
      3,
      [&](dc::Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 0; i < 30; ++i) comm.send_value<int>(1, 3, i);
        } else if (comm.rank() == 1) {
          for (int i = 0; i < 30; ++i) EXPECT_EQ(comm.recv_value<int>(0, 3), i);
        }
        gathered[static_cast<std::size_t>(comm.rank())] =
            comm.allgather(static_cast<int>(comm.rank() * 10));
      },
      options);
  for (const auto& g : gathered) EXPECT_EQ(g, (std::vector<int>{0, 10, 20}));
  EXPECT_GT(report.injected_delays, 0);
}

TEST(FaultLayer, InjectedCrashFiresOnceAndDeterministically) {
  auto injector = std::make_shared<dc::FaultInjector>(dc::FaultPlan().crash(1, 2, 0));
  dc::RunOptions options;
  options.faults = injector;
  EXPECT_THROW(dc::run(
                   2,
                   [](dc::Comm& comm) { comm.fault_point(2, 0); },
                   options),
               dc::RankCrashed);
  EXPECT_EQ(injector->crashes_fired.load(), 1);
  // One-shot: the same injector lets a restarted attempt pass the trigger.
  dc::run(
      2, [](dc::Comm& comm) { comm.fault_point(2, 0); }, options);
  EXPECT_EQ(injector->crashes_fired.load(), 1);
}

TEST(FaultLayer, FateIsAFunctionOfTheSeed) {
  // Same plan seed -> same set of delayed messages, run after run.
  const auto count_delays = [] {
    dc::RunOptions options;
    options.faults =
        std::make_shared<dc::FaultInjector>(dc::FaultPlan().with_seed(7).delay(0.3, 0.1));
    const auto report = dc::run(
        2,
        [](dc::Comm& comm) {
          if (comm.rank() == 0) {
            for (int i = 0; i < 100; ++i) comm.send_value<int>(1, 9, i);
          } else {
            for (int i = 0; i < 100; ++i) (void)comm.recv_value<int>(0, 9);
          }
        },
        options);
    return report.injected_delays;
  };
  const auto first = count_delays();
  EXPECT_GT(first, 0);
  EXPECT_LT(first, 100);
  EXPECT_EQ(first, count_delays());
}

// ---- Rung 1: link-level ARQ (retransmit with backoff) ----------------------

TEST(ArqLayer, LostMessagesAreRepairedByRetransmit) {
  // Drop a quarter of all messages on a long single-stream run. With a
  // retransmit budget, every loss must be repaired transparently: the
  // receiver sees the full sequence in FIFO order, no exception, and the
  // NACK/retransmit counters show the repair happened.
  constexpr int kRounds = 100;
  dc::RunOptions options;
  options.retransmit_max = 8;
  options.retransmit_backoff_ms = 0.2;
  options.metrics = std::make_shared<dlouvain::util::MetricsRegistry>(2);
  options.faults =
      std::make_shared<dc::FaultInjector>(dc::FaultPlan().with_seed(11).lose(0.25));
  const auto report = dc::run(
      2,
      [](dc::Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 0; i < kRounds; ++i) comm.send_value<int>(1, 7, i);
          (void)comm.recv_value<int>(1, 8);  // hold the world open for repairs
        } else {
          for (int i = 0; i < kRounds; ++i)
            ASSERT_EQ(comm.recv_value<int>(0, 7), i);
          comm.send_value<int>(0, 8, 1);
        }
      },
      options);
  EXPECT_GT(report.injected_losses, 0);
  const auto totals = options.metrics->total();
  using dlouvain::util::Counter;
  const auto at = [&](Counter c) {
    return totals.values[static_cast<std::size_t>(c)];
  };
  EXPECT_GE(at(Counter::kArqNacks), report.injected_losses);
  EXPECT_GE(at(Counter::kArqRetransmits), 1);
  EXPECT_EQ(at(Counter::kArqEscalations), 0);
}

TEST(ArqLayer, CorruptedPayloadIsRepairedByRetransmit) {
  // Same wire as FaultLayer.CorruptedPayloadIsDetected, but with ARQ on: the
  // CRC mismatch becomes a NACK instead of a CorruptMessage, and the clean
  // retained copy is delivered.
  dc::RunOptions options;
  // 10% corruption: each retransmission re-draws its fate, so an 8-attempt
  // budget leaves no realistic path to escalation (0.1^8) while still
  // corrupting (and repairing) several originals on a 50-message stream.
  options.retransmit_max = 8;
  options.retransmit_backoff_ms = 0.2;
  options.faults =
      std::make_shared<dc::FaultInjector>(dc::FaultPlan().with_seed(3).corrupt(0.1));
  dc::run(
      2,
      [](dc::Comm& comm) {
        if (comm.rank() == 0) {
          for (int i = 0; i < 50; ++i) comm.send_value<int>(1, 5, 1000 + i);
          (void)comm.recv_value<int>(1, 6);
        } else {
          for (int i = 0; i < 50; ++i)
            ASSERT_EQ(comm.recv_value<int>(0, 5), 1000 + i);
          comm.send_value<int>(0, 6, 1);
        }
      },
      options);
}

TEST(ArqLayer, LostMessageWithoutArqThrowsGapDiagnostic) {
  // No retransmit budget: a sequence gap is unrecoverable, and the receiver
  // must say exactly which stream lost which message.
  dc::RunOptions options;
  options.faults =
      std::make_shared<dc::FaultInjector>(dc::FaultPlan().with_seed(11).lose(0.25));
  try {
    dc::run(
        2,
        [](dc::Comm& comm) {
          if (comm.rank() == 0) {
            for (int i = 0; i < 50; ++i) comm.send_value<int>(1, 7, i);
          } else {
            for (int i = 0; i < 50; ++i) (void)comm.recv_value<int>(0, 7);
          }
        },
        options);
    FAIL() << "expected CommFailure";
  } catch (const dc::CommFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lost message in stream"), std::string::npos) << what;
    EXPECT_NE(what.find("expected seq"), std::string::npos) << what;
  }
}

TEST(ArqLayer, ExhaustedRetransmitBudgetEscalates) {
  // Lose EVERY copy, originals and retransmits alike: after the budget is
  // spent the link must escalate with a CommFailure naming the retry count
  // -- rung 1 handing the fault up the ladder instead of spinning forever.
  dc::RunOptions options;
  options.retransmit_max = 3;
  options.retransmit_backoff_ms = 0.1;
  options.faults = std::make_shared<dc::FaultInjector>(dc::FaultPlan().lose(1.0));
  try {
    dc::run(
        2,
        [](dc::Comm& comm) {
          if (comm.rank() == 0) comm.send_value<int>(1, 7, 42);
          else (void)comm.recv_value<int>(0, 7);
        },
        options);
    FAIL() << "expected CommFailure";
  } catch (const dc::CommFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("retransmit budget exhausted"), std::string::npos) << what;
    EXPECT_NE(what.find("3"), std::string::npos) << what;
  }
}

TEST(ArqLayer, RetransmitPreservesDeterminism) {
  // The repaired wire must carry the exact same bytes in the exact same
  // per-stream order as a clean one: run the same traffic with and without
  // loss+ARQ and compare everything received.
  const auto collect = [](double lose) {
    dc::RunOptions options;
    if (lose > 0) {
      options.retransmit_max = 8;
      options.retransmit_backoff_ms = 0.1;
      options.faults =
          std::make_shared<dc::FaultInjector>(dc::FaultPlan().with_seed(4).lose(lose));
    }
    std::vector<std::vector<int>> got(3);
    dc::run(
        3,
        [&](dc::Comm& comm) {
          const Rank next = (comm.rank() + 1) % 3;
          const Rank prev = (comm.rank() + 2) % 3;
          for (int i = 0; i < 40; ++i) {
            comm.send_value<int>(next, 9, comm.rank() * 100 + i);
            got[static_cast<std::size_t>(comm.rank())].push_back(
                comm.recv_value<int>(prev, 9));
          }
        },
        options);
    return got;
  };
  EXPECT_EQ(collect(0.0), collect(0.2));
}

// ---- Rung 2: heartbeat lane (slow-vs-dead verdicts) ------------------------

TEST(HeartbeatLane, SlowWorldGetsExtensionsNotTimeout) {
  // Rank 0 waits for a message that arrives well past its deadline, but the
  // rest of the world keeps beating (rank 1 drip-feeds rank 2). The verdict
  // must be "slow, not dead": extend the deadline and deliver, no throw.
  dc::RunOptions options;
  options.timeout_seconds = 0.1;
  options.metrics = std::make_shared<dlouvain::util::MetricsRegistry>(3);
  dc::run(
      3,
      [](dc::Comm& comm) {
        if (comm.rank() == 0) {
          EXPECT_EQ(comm.recv_value<int>(1, 1), 42);
        } else if (comm.rank() == 1) {
          for (int i = 0; i < 5; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(40));
            comm.send_value<int>(2, 2, i);  // background progress = beats
          }
          comm.send_value<int>(0, 1, 42);  // ~2x the deadline late
        } else {
          for (int i = 0; i < 5; ++i) (void)comm.recv_value<int>(1, 2);
        }
      },
      options);
  using dlouvain::util::Counter;
  EXPECT_GE(options.metrics->total()
                .values[static_cast<std::size_t>(Counter::kHeartbeatExtensions)],
            1);
}

TEST(HeartbeatLane, PermanentDeathYieldsRankDeadVerdict) {
  // A kill() trigger declares the rank dead in the heartbeat lane and throws
  // RankDead -- the typed verdict a recovery driver needs for rung 3. It
  // re-fires on a second attempt (dead hardware stays dead) until retired.
  auto injector = std::make_shared<dc::FaultInjector>(dc::FaultPlan().kill(1, 2));
  dc::RunOptions options;
  options.faults = injector;
  const auto attempt = [&] {
    dc::run(
        2, [](dc::Comm& comm) { comm.fault_point(2, 0); }, options);
  };
  for (int i = 0; i < 2; ++i) {
    try {
      attempt();
      FAIL() << "expected RankDead, attempt " << i;
    } catch (const dc::RankDead& e) {
      EXPECT_EQ(e.rank, 1);
      EXPECT_NE(std::string(e.what()).find("permanent death"), std::string::npos);
    }
  }
  EXPECT_EQ(injector->crashes_fired.load(), 2);
  injector->retire(1);
  attempt();  // the shrink retired the trigger: survivors proceed
  EXPECT_EQ(injector->crashes_fired.load(), 2);
}

TEST(HeartbeatLane, BlockedPeerGetsRankDeadNotTimeout) {
  // Rank 1 dies permanently while rank 0 sits in a deadline-bounded receive:
  // the expiry must convert into RankDead (naming the corpse), not a generic
  // CommTimeout.
  dc::RunOptions options;
  options.timeout_seconds = 0.15;
  options.faults = std::make_shared<dc::FaultInjector>(dc::FaultPlan().kill(1, 0));
  try {
    dc::run(
        2,
        [](dc::Comm& comm) {
          if (comm.rank() == 1) comm.fault_point(0, 0);
          (void)comm.recv_value<int>(1 - comm.rank(), 3);
        },
        options);
    FAIL() << "expected RankDead";
  } catch (const dc::RankDead& e) {
    EXPECT_EQ(e.rank, 1);
  }
}

TEST(FaultLayer, TimeoutReportNamesEveryBlockedRankWithHandlesInFlight) {
  // The overlap-on failure mode: every rank has posted a nonblocking
  // ghost-exchange-style receive (handle in flight) for a message that never
  // comes, while one real message lands at each rank and is left undrained.
  // The whole-world CommTimeout diagnostic must name every blocked rank and
  // the pending depth of the undrained streams.
  dc::RunOptions options;
  options.timeout_seconds = 0.25;
  try {
    dc::run(
        3,
        [](dc::Comm& comm) {
          comm.send_value<int>((comm.rank() + 1) % 3, 7, comm.rank());
          auto pending = comm.irecv((comm.rank() + 2) % 3, 9);  // never sent
          pending.wait();  // blocks with the handle in flight
        },
        options);
    FAIL() << "expected CommTimeout";
  } catch (const dc::CommTimeout& e) {
    // Every rank is named; the reporter's own line carries both halves of
    // "who is stuck on whom": the blocked (src, tag) want and the x1 depth
    // of the stream that landed and was never drained. (Tags are wire tags
    // -- context-packed -- so only the structure is asserted, not values.)
    const std::string what = e.what();
    for (const char* frag :
         {"rank 0", "rank 1", "rank 2", "blocked on (src=", "]x1"}) {
      EXPECT_NE(what.find(frag), std::string::npos)
          << "missing '" << frag << "' in:\n" << what;
    }
  }
}
