// Tests for modularity, coarsening, serial Louvain, and the shared-memory
// comparator -- including the key property tests: (1) the ΔQ move formula
// matches brute-force modularity recomputation, and (2) coarsening preserves
// modularity exactly.
#include <gtest/gtest.h>

#include <numeric>

#include "gen/lfr.hpp"
#include "gen/simple.hpp"
#include "gen/ssca2.hpp"
#include "graph/csr.hpp"
#include "louvain/coarsen.hpp"
#include "louvain/config.hpp"
#include "louvain/early_term.hpp"
#include "louvain/modularity.hpp"
#include "louvain/serial.hpp"
#include "louvain/shared.hpp"
#include "util/prng.hpp"

namespace dl = dlouvain::louvain;
namespace dg = dlouvain::graph;
namespace gen = dlouvain::gen;
using dlouvain::CommunityId;
using dlouvain::Edge;
using dlouvain::VertexId;
using dlouvain::Weight;

namespace {

dg::Csr two_triangles_bridge() {
  // Two triangles {0,1,2} and {3,4,5} joined by edge 2-3.
  return dg::from_edges(6, {{0, 1, 1},
                            {1, 2, 1},
                            {0, 2, 1},
                            {3, 4, 1},
                            {4, 5, 1},
                            {3, 5, 1},
                            {2, 3, 1}});
}

std::vector<CommunityId> singletons(VertexId n) {
  std::vector<CommunityId> c(static_cast<std::size_t>(n));
  std::iota(c.begin(), c.end(), CommunityId{0});
  return c;
}

}  // namespace

TEST(Modularity, SingletonPartitionOfRingIsNegative) {
  const auto g = dg::from_edges(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1}});
  // Q = 0 - sum (k/2m)^2 = -4 * (2/8)^2 = -0.25.
  EXPECT_NEAR(dl::modularity(g, singletons(4)), -0.25, 1e-12);
}

TEST(Modularity, AllInOneCommunityIsZero) {
  const auto g = two_triangles_bridge();
  const std::vector<CommunityId> one(6, 0);
  EXPECT_NEAR(dl::modularity(g, one), 0.0, 1e-12);
}

TEST(Modularity, TwoTrianglesSplitBeatsMerged) {
  const auto g = two_triangles_bridge();
  const std::vector<CommunityId> split{0, 0, 0, 1, 1, 1};
  // 2m = 14; intra both dirs = 12; degree sums 7 and 7.
  // Q = 12/14 - 2*(7/14)^2 = 6/7 - 1/2.
  EXPECT_NEAR(dl::modularity(g, split), 6.0 / 7.0 - 0.5, 1e-12);
  EXPECT_GT(dl::modularity(g, split), 0.0);
}

TEST(Modularity, AgreesWithReferenceOnRandomPartitions) {
  const auto graph = gen::erdos_renyi(120, 0.08, 21);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  dlouvain::util::Xoshiro256StarStar rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<CommunityId> part(120);
    const int k = 1 + static_cast<int>(rng.next_below(10));
    for (auto& c : part) c = static_cast<CommunityId>(rng.next_below(k));
    EXPECT_NEAR(dl::modularity(g, part), dl::modularity_reference(g, part), 1e-12);
  }
}

TEST(Modularity, SelfLoopsHandledConsistently) {
  // Weighted graph with a self loop; the two implementations must agree.
  dg::BuildOptions opts;
  opts.symmetrize = true;
  const auto g = dg::build_csr(3, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 2, 3.0}}, opts);
  const std::vector<CommunityId> part{0, 0, 1};
  EXPECT_NEAR(dl::modularity(g, part), dl::modularity_reference(g, part), 1e-12);
}

TEST(Modularity, EmptyGraphIsZero) {
  const auto g = dg::from_edges(3, {});
  EXPECT_EQ(dl::modularity(g, singletons(3)), 0.0);
}

TEST(Modularity, MismatchedAssignmentThrows) {
  const auto g = two_triangles_bridge();
  std::vector<CommunityId> bad(3, 0);
  EXPECT_THROW((void)dl::modularity(g, bad), std::invalid_argument);
}

// ---- The ΔQ property test: gain formula == brute force -------------------

TEST(DeltaQ, GainFormulaMatchesBruteForceRecomputation) {
  // For random graphs, partitions, vertices, and targets: the analytic gain
  //   (e_t - e_own)/m - k_v (a_t - a_{own\v}) / (2 m^2)
  // must equal Q(after move) - Q(before move).
  dlouvain::util::Xoshiro256StarStar rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const auto graph = gen::erdos_renyi(40, 0.15, 100 + trial);
    const auto g = dg::from_edges(graph.num_vertices, graph.edges);
    const VertexId n = g.num_vertices();
    const Weight two_m = g.total_arc_weight();
    if (two_m == 0) continue;
    const Weight m = two_m / 2;

    std::vector<CommunityId> part(static_cast<std::size_t>(n));
    for (auto& c : part) c = static_cast<CommunityId>(rng.next_below(6));

    std::vector<Weight> a(6, 0.0);
    for (VertexId v = 0; v < n; ++v)
      a[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] += g.weighted_degree(v);

    for (int probe = 0; probe < 20; ++probe) {
      const auto v = static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(n)));
      const auto target = static_cast<CommunityId>(rng.next_below(6));
      const CommunityId own = part[static_cast<std::size_t>(v)];
      if (target == own) continue;

      Weight e_own = 0;
      Weight e_target = 0;
      for (const auto& e : g.neighbors(v)) {
        if (e.dst == v) continue;
        const CommunityId cd = part[static_cast<std::size_t>(e.dst)];
        if (cd == own) e_own += e.weight;
        if (cd == target) e_target += e.weight;
      }
      const Weight kv = g.weighted_degree(v);
      const Weight gain =
          (e_target - e_own) / m -
          kv * (a[static_cast<std::size_t>(target)] -
                (a[static_cast<std::size_t>(own)] - kv)) /
              (2 * m * m);

      const Weight before = dl::modularity(g, part);
      part[static_cast<std::size_t>(v)] = target;
      const Weight after = dl::modularity(g, part);
      part[static_cast<std::size_t>(v)] = own;

      EXPECT_NEAR(gain, after - before, 1e-10)
          << "trial " << trial << " vertex " << v << " -> " << target;
    }
  }
}

// ---- Coarsening properties ------------------------------------------------

TEST(Coarsen, PreservesTotalWeightAndDegrees) {
  const auto g = two_triangles_bridge();
  const std::vector<CommunityId> part{0, 0, 0, 1, 1, 1};
  const auto coarse = dl::coarsen(g, part);
  EXPECT_EQ(coarse.graph.num_vertices(), 2);
  EXPECT_DOUBLE_EQ(coarse.graph.total_arc_weight(), g.total_arc_weight());
  // Meta-degree = sum of member degrees (7 each here).
  EXPECT_DOUBLE_EQ(coarse.graph.weighted_degree(0), 7.0);
  EXPECT_DOUBLE_EQ(coarse.graph.weighted_degree(1), 7.0);
}

TEST(Coarsen, ModularityIsInvariantUnderCoarsening) {
  // Q(g, part) == Q(coarsen(g, part), singletons): THE invariant the whole
  // multi-phase scheme rests on. Check across random graphs and partitions.
  dlouvain::util::Xoshiro256StarStar rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const auto graph = gen::erdos_renyi(60, 0.1, 500 + trial);
    const auto g = dg::from_edges(graph.num_vertices, graph.edges);
    std::vector<CommunityId> part(60);
    for (auto& c : part) c = static_cast<CommunityId>(rng.next_below(7));
    const auto coarse = dl::coarsen(g, part);
    EXPECT_NEAR(dl::modularity(g, part),
                dl::modularity(coarse.graph, singletons(coarse.graph.num_vertices())),
                1e-12);
  }
}

TEST(Coarsen, TwoLevelCoarseningComposes) {
  const auto g = two_triangles_bridge();
  const std::vector<CommunityId> part{0, 0, 1, 1, 2, 2};
  const auto level1 = dl::coarsen(g, part);
  const std::vector<CommunityId> part2{0, 0, 1};
  const auto level2 = dl::coarsen(level1.graph, part2);
  const auto composed = dl::compose(level1.old_to_new, part2);
  EXPECT_NEAR(dl::modularity(g, composed),
              dl::modularity(level2.graph, singletons(level2.graph.num_vertices())),
              1e-12);
}

TEST(Coarsen, CompactIdsProducesDenseRange) {
  std::vector<CommunityId> ids{42, 7, 42, 100, 7};
  const auto k = dl::compact_ids(ids);
  EXPECT_EQ(k, 3);
  EXPECT_EQ(ids, (std::vector<CommunityId>{1, 0, 1, 2, 0}));
}

// ---- EtState ---------------------------------------------------------------

TEST(EarlyTerm, ProbabilityDecaysAndResets) {
  dl::EtState et(1, 0.5, 0.02, 1);
  EXPECT_TRUE(et.is_active(0, 0, 0, 0));  // P = 1
  et.update(0, false);                    // P = 0.5
  et.update(0, false);                    // P = 0.25
  et.update(0, true);                     // reset to 1
  EXPECT_TRUE(et.is_active(0, 0, 0, 5));
  for (int i = 0; i < 10; ++i) et.update(0, false);
  EXPECT_FALSE(et.is_active(0, 0, 0, 6));  // below cutoff -> inactive
  EXPECT_EQ(et.inactive_count(), 1);
}

TEST(EarlyTerm, AlphaZeroNeverDeactivates) {
  dl::EtState et(1, 0.0, 0.02, 1);
  for (int i = 0; i < 100; ++i) et.update(0, false);
  EXPECT_TRUE(et.is_active(0, 0, 0, 0));
  EXPECT_EQ(et.inactive_count(), 0);
}

TEST(EarlyTerm, AlphaOneDeactivatesImmediately) {
  dl::EtState et(1, 1.0, 0.02, 1);
  et.update(0, false);
  EXPECT_FALSE(et.is_active(0, 0, 0, 1));
}

// ---- Serial Louvain --------------------------------------------------------

TEST(SerialLouvain, FindsTheTwoTriangles) {
  const auto g = two_triangles_bridge();
  const auto result = dl::louvain_serial(g);
  EXPECT_EQ(result.num_communities, 2);
  EXPECT_EQ(result.community[0], result.community[1]);
  EXPECT_EQ(result.community[1], result.community[2]);
  EXPECT_EQ(result.community[3], result.community[4]);
  EXPECT_EQ(result.community[4], result.community[5]);
  EXPECT_NE(result.community[0], result.community[3]);
  EXPECT_NEAR(result.modularity, 6.0 / 7.0 - 0.5, 1e-12);
}

TEST(SerialLouvain, ReportedModularityMatchesRecomputation) {
  const auto graph = gen::lfr([] {
    gen::LfrParams p;
    p.num_vertices = 400;
    p.avg_degree = 12;
    p.max_degree = 36;
    p.mu = 0.2;
    return p;
  }());
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = dl::louvain_serial(g);
  EXPECT_NEAR(result.modularity, dl::modularity(g, result.community), 1e-9);
}

TEST(SerialLouvain, CliqueChainRecoversCliques) {
  const auto graph = gen::clique_chain(8, 6);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = dl::louvain_serial(g);
  EXPECT_EQ(result.num_communities, 8);
  // Every clique ends up in one community.
  for (VertexId c = 0; c < 8; ++c)
    for (VertexId i = 1; i < 6; ++i)
      EXPECT_EQ(result.community[static_cast<std::size_t>(c * 6)],
                result.community[static_cast<std::size_t>(c * 6 + i)]);
}

TEST(SerialLouvain, HighModularityOnPlantedStructure) {
  gen::Ssca2Params p;
  p.num_vertices = 1000;
  p.max_clique_size = 25;
  p.inter_clique_prob = 0.01;
  const auto graph = gen::ssca2(p);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = dl::louvain_serial(g);
  EXPECT_GT(result.modularity, 0.9);
}

TEST(SerialLouvain, SingleVertexAndEmptyGraphDoNotCrash) {
  const auto g1 = dg::from_edges(1, {});
  const auto r1 = dl::louvain_serial(g1);
  EXPECT_EQ(r1.num_communities, 1);
  const auto g2 = dg::from_edges(5, {});
  const auto r2 = dl::louvain_serial(g2);
  EXPECT_EQ(r2.num_communities, 5);  // no edges -> everyone stays singleton
}

TEST(SerialLouvain, PhaseStatsAreCoherent) {
  const auto graph = gen::clique_chain(10, 5);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = dl::louvain_serial(g);
  EXPECT_EQ(result.phase_stats.size(), static_cast<std::size_t>(result.phases));
  long total = 0;
  for (const auto& ps : result.phase_stats) {
    total += ps.iterations;
    EXPECT_GT(ps.iterations, 0);
    EXPECT_GT(ps.graph_vertices, 0);
  }
  EXPECT_EQ(total, result.total_iterations);
  // Modularity never decreases across phases.
  for (std::size_t i = 1; i < result.phase_stats.size(); ++i)
    EXPECT_GE(result.phase_stats[i].modularity_after + 1e-12,
              result.phase_stats[i - 1].modularity_after);
}

// ---- Shared-memory Louvain --------------------------------------------------

TEST(SharedLouvain, MatchesSerialOnCliqueChain) {
  const auto graph = gen::clique_chain(8, 6);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto serial = dl::louvain_serial(g);
  const auto shared = dl::louvain_shared(g);
  EXPECT_EQ(shared.num_communities, serial.num_communities);
  EXPECT_NEAR(shared.modularity, serial.modularity, 1e-9);
}

TEST(SharedLouvain, QualityWithinOnePercentOfSerialOnLfr) {
  gen::LfrParams p;
  p.num_vertices = 600;
  p.avg_degree = 14;
  p.max_degree = 42;
  p.mu = 0.25;
  const auto graph = gen::lfr(p);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto serial = dl::louvain_serial(g);
  const auto shared = dl::louvain_shared(g);
  EXPECT_GT(shared.modularity, serial.modularity * 0.99);
}

TEST(SharedLouvain, DeterministicAtFixedThreadCount) {
  // The asynchronous sweep is racy across threads (Grappolo-style), so only
  // same-configuration determinism is promised.
  const auto graph = gen::clique_chain(12, 5);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto first = dl::louvain_shared(g, {}, 1);
  const auto second = dl::louvain_shared(g, {}, 1);
  EXPECT_EQ(first.community, second.community);
  EXPECT_EQ(first.modularity, second.modularity);
  // Multi-thread runs still land in the same quality band.
  const auto t4 = dl::louvain_shared(g, {}, 4);
  EXPECT_NEAR(t4.modularity, first.modularity, 0.02);
}

TEST(SharedLouvain, ReportedModularityMatchesRecomputation) {
  gen::Ssca2Params p;
  p.num_vertices = 800;
  p.max_clique_size = 20;
  const auto graph = gen::ssca2(p);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = dl::louvain_shared(g);
  EXPECT_NEAR(result.modularity, dl::modularity(g, result.community), 1e-9);
}

class SharedEtSweep : public ::testing::TestWithParam<double> {};

TEST_P(SharedEtSweep, EtKeepsQualityWithinBand) {
  // The Table I property: across the whole alpha range, ET trades time for
  // at most a small modularity loss.
  const double alpha = GetParam();
  gen::Ssca2Params p;
  p.num_vertices = 800;
  p.max_clique_size = 20;
  const auto graph = gen::ssca2(p);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  dl::LouvainConfig base;
  const auto baseline = dl::louvain_shared(g, base);

  dl::LouvainConfig cfg;
  cfg.early_termination = true;
  cfg.et_alpha = alpha;
  const auto et = dl::louvain_shared(g, cfg);

  EXPECT_GT(et.modularity, baseline.modularity - 0.05)
      << "alpha=" << alpha << " lost too much quality";
}

INSTANTIATE_TEST_SUITE_P(AlphaRange, SharedEtSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

TEST(SharedLouvain, EtReducesWorkOnStructuredInput) {
  // With alpha = 1 vertices deactivate after the first quiet iteration, so
  // the iteration count across phases must not exceed the baseline's.
  const auto graph = gen::clique_chain(20, 8);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto baseline = dl::louvain_shared(g);
  dl::LouvainConfig cfg;
  cfg.early_termination = true;
  cfg.et_alpha = 1.0;
  const auto aggressive = dl::louvain_shared(g, cfg);
  EXPECT_LE(aggressive.total_iterations, baseline.total_iterations + 2);
}
