// Robustness and property-sweep tests: the karate-club real-graph fixture,
// failure injection in the comm substrate, input validation across modules,
// and a parameterized serial-vs-distributed equivalence sweep over graph
// families and rank counts.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>

#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "comm/world.hpp"
#include "core/checkpoint.hpp"
#include "core/dist_louvain.hpp"
#include "dlouvain.hpp"
#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "gen/simple.hpp"
#include "gen/ssca2.hpp"
#include "graph/binary_io.hpp"
#include "graph/csr.hpp"
#include "graph/stats.hpp"
#include "louvain/early_term.hpp"
#include "louvain/modularity.hpp"
#include "louvain/serial.hpp"
#include "louvain/shared.hpp"
#include "quality/fscore.hpp"

namespace core = dlouvain::core;
namespace dg = dlouvain::graph;
namespace gen = dlouvain::gen;
namespace dl = dlouvain::louvain;
namespace dc = dlouvain::comm;
using dlouvain::CommunityId;
using dlouvain::Edge;
using dlouvain::VertexId;

// ---- Karate club: the canonical real-world fixture ---------------------------

TEST(KarateClub, FixtureMatchesPublishedStructure) {
  const auto g = gen::karate_club();
  EXPECT_EQ(g.num_vertices, 34);
  EXPECT_EQ(g.num_edges(), 78);
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  EXPECT_EQ(csr.degree(0), 16);   // Mr. Hi
  EXPECT_EQ(csr.degree(33), 17);  // the Officer
  EXPECT_EQ(csr.degree(32), 12);
  const auto components = dg::connected_components(csr);
  EXPECT_EQ(components.count, 1);
}

TEST(KarateClub, SerialLouvainFindsKnownModularity) {
  const auto g = gen::karate_club();
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  const auto result = dl::louvain_serial(csr);
  // Louvain's known result band on karate: Q ~ 0.40-0.42, ~4 communities.
  EXPECT_GE(result.modularity, 0.40);
  EXPECT_LE(result.modularity, 0.43);
  EXPECT_GE(result.num_communities, 3);
  EXPECT_LE(result.num_communities, 5);
}

TEST(KarateClub, DistributedMatchesSerialBand) {
  const auto g = gen::karate_club();
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  for (int p : {1, 2, 3, 4}) {
    const auto result = core::dist_louvain_inprocess(p, csr);
    EXPECT_GE(result.modularity, 0.39) << "p=" << p;
    EXPECT_NEAR(result.modularity, dl::modularity(csr, result.community), 1e-9);
  }
}

TEST(KarateClub, CommunitiesRespectTheFactionSplit) {
  // Louvain's communities refine the two factions; mapping each detected
  // community to its majority faction should reproduce the split well.
  const auto g = gen::karate_club();
  const auto csr = dg::from_edges(g.num_vertices, g.edges);
  const auto result = dl::louvain_serial(csr);
  const auto scores = dlouvain::quality::compare_to_ground_truth(
      g.ground_truth, result.community);  // detected=truth-side: refinement check
  // Each Louvain community should sit (almost) entirely inside one faction.
  EXPECT_GE(scores.recall, 0.85);
}

// ---- Failure injection in the comm substrate -----------------------------------

TEST(FailureInjection, AbortUnblocksCollectives) {
  // One rank dies mid-protocol while others sit in a barrier chain; everyone
  // must unwind rather than hang, and the original error must surface.
  EXPECT_THROW(dc::run(4,
                       [](dc::Comm& comm) {
                         if (comm.rank() == 3) throw std::runtime_error("injected");
                         for (int i = 0; i < 1000; ++i) comm.barrier();
                       }),
               std::runtime_error);
}

TEST(FailureInjection, AbortUnblocksAlltoallv) {
  EXPECT_THROW(dc::run(3,
                       [](dc::Comm& comm) {
                         if (comm.rank() == 0) throw std::logic_error("dead rank");
                         std::vector<std::vector<int>> outbox(3);
                         for (;;) (void)comm.alltoallv<int>(outbox);
                       }),
               std::logic_error);
}

TEST(FailureInjection, FirstErrorWins) {
  // Multiple ranks throw; run() must report exactly one of them (and not a
  // WorldAborted).
  try {
    dc::run(4, [](dc::Comm& comm) {
      if (comm.rank() % 2 == 0) throw std::runtime_error("rank error");
      (void)comm.recv_bytes((comm.rank() + 1) % 4, 1);
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "rank error");
  }
}

TEST(FailureInjection, CorruptBinaryFileIsRejected) {
  const auto path = std::filesystem::temp_directory_path() / "dlel_corrupt.bin";
  {
    std::ofstream file(path, std::ios::binary);
    const char garbage[64] = "this is not a DLEL file at all.................";
    file.write(garbage, sizeof garbage);
  }
  EXPECT_THROW((void)dg::read_binary_header(path.string()), std::runtime_error);
  EXPECT_THROW((void)dg::read_binary_slice(path.string(), 0, 1), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FailureInjection, TruncatedBinaryFileIsRejected) {
  const auto path = std::filesystem::temp_directory_path() / "dlel_trunc.bin";
  dg::write_binary(path.string(), 4, {{0, 1, 1.0}, {2, 3, 1.0}});
  // Chop the last record in half.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 12);
  EXPECT_THROW((void)dg::read_binary_slice(path.string(), 0, 2), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FailureInjection, DistGraphRejectsMismatchedPartition) {
  dc::run(2, [](dc::Comm& comm) {
    const auto part = dg::partition_even_vertices(10, 3);  // wrong rank count
    EXPECT_THROW((void)dg::DistGraph::build(comm, part, {}, true),
                 std::invalid_argument);
  });
}

TEST(FailureInjection, DistGraphRejectsOutOfRangeEdges) {
  EXPECT_THROW(dc::run(2,
                       [](dc::Comm& comm) {
                         const auto part = dg::partition_even_vertices(4, 2);
                         std::vector<Edge> bad{{0, 9, 1.0}};
                         (void)dg::DistGraph::build(comm, part, std::move(bad), true);
                       }),
               std::out_of_range);
}

// ---- Serial vs distributed equivalence sweep ------------------------------------

struct FamilyCase {
  const char* name;
  dg::Csr (*make)();
};

namespace {

dg::Csr make_lfr_graph() {
  gen::LfrParams p;
  p.num_vertices = 350;
  p.avg_degree = 12;
  p.max_degree = 36;
  p.mu = 0.25;
  p.seed = 21;
  const auto g = gen::lfr(p);
  return dg::from_edges(g.num_vertices, g.edges);
}

dg::Csr make_ssca2_graph() {
  gen::Ssca2Params p;
  p.num_vertices = 400;
  p.max_clique_size = 18;
  p.seed = 22;
  const auto g = gen::ssca2(p);
  return dg::from_edges(g.num_vertices, g.edges);
}

dg::Csr make_rmat_graph() {
  gen::RmatParams p;
  p.scale = 8;
  p.edges_per_vertex = 6;
  p.seed = 23;
  const auto g = gen::rmat(p);
  return dg::from_edges(g.num_vertices, g.edges);
}

dg::Csr make_banded_graph() {
  const auto g = gen::banded(300, 5);
  return dg::from_edges(g.num_vertices, g.edges);
}

dg::Csr make_smallworld_graph() {
  const auto g = gen::watts_strogatz(300, 8, 0.1, 24);
  return dg::from_edges(g.num_vertices, g.edges);
}

}  // namespace

class FamilySweep : public ::testing::TestWithParam<std::tuple<FamilyCase, int>> {};

TEST_P(FamilySweep, DistributedTracksSerialQuality) {
  const auto& [family, p] = GetParam();
  const auto g = family.make();
  const auto serial = dl::louvain_serial(g);
  const auto dist = core::dist_louvain_inprocess(p, g);

  // Exact bookkeeping always; quality within a few percent of serial (the
  // paper's single-node comparison found < 1% on large graphs; small graphs
  // are noisier).
  EXPECT_NEAR(dist.modularity, dl::modularity(g, dist.community), 1e-9)
      << family.name << " p=" << p;
  EXPECT_GT(dist.modularity, serial.modularity - 0.04) << family.name << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesTimesRanks, FamilySweep,
    ::testing::Combine(::testing::Values(FamilyCase{"lfr", &make_lfr_graph},
                                         FamilyCase{"ssca2", &make_ssca2_graph},
                                         FamilyCase{"rmat", &make_rmat_graph},
                                         FamilyCase{"banded", &make_banded_graph},
                                         FamilyCase{"smallworld", &make_smallworld_graph}),
                       ::testing::Values(2, 4, 7)),
    [](const ::testing::TestParamInfo<FamilySweep::ParamType>& info) {
      return std::string(std::get<0>(info.param).name) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Misc determinism & config checks --------------------------------------------

TEST(Determinism, SerialRunsAreIdentical) {
  const auto g = make_lfr_graph();
  const auto a = dl::louvain_serial(g);
  const auto b = dl::louvain_serial(g);
  EXPECT_EQ(a.community, b.community);
  EXPECT_EQ(a.modularity, b.modularity);
  EXPECT_EQ(a.total_iterations, b.total_iterations);
}

TEST(Determinism, DistributedRunsAreIdentical) {
  const auto g = make_ssca2_graph();
  const auto a = core::dist_louvain_inprocess(3, g);
  const auto b = core::dist_louvain_inprocess(3, g);
  EXPECT_EQ(a.community, b.community);
  EXPECT_EQ(a.modularity, b.modularity);
}

TEST(Determinism, SeedChangesTheSweepButNotValidity) {
  const auto g = make_lfr_graph();
  core::DistConfig other_seed;
  other_seed.base.seed = 123456;
  const auto a = core::dist_louvain_inprocess(2, g);
  const auto b = core::dist_louvain_inprocess(2, g, other_seed);
  EXPECT_NEAR(a.modularity, b.modularity, 0.03);
  EXPECT_NEAR(b.modularity, dl::modularity(g, b.community), 1e-9);
}

TEST(Config, EtCutoffIsConfigurable) {
  dl::EtState strict(1, 0.5, 0.6, 1);  // cutoff 60%: one decay -> inactive
  strict.update(0, false);
  EXPECT_FALSE(strict.is_active(0, 0, 0, 1));
  dl::EtState lax(1, 0.5, 0.01, 1);
  lax.update(0, false);
  // At P=0.5 the vertex is probabilistically active; it is NOT labelled
  // inactive (cutoff 1%).
  EXPECT_EQ(lax.inactive_count(), 0);
}

TEST(Config, MaxPhasesBoundsTheRun) {
  const auto g = make_lfr_graph();
  core::DistConfig cfg;
  cfg.base.max_phases = 1;
  const auto result = core::dist_louvain_inprocess(2, g, cfg);
  EXPECT_EQ(result.phases, 1);
}

// ---- Resolution parameter ------------------------------------------------------

TEST(Resolution, GammaOneMatchesClassicModularity) {
  const auto g = make_lfr_graph();
  dl::LouvainConfig plain;
  dl::LouvainConfig gamma_one;
  gamma_one.resolution = 1.0;
  const auto a = dl::louvain_serial(g, plain);
  const auto b = dl::louvain_serial(g, gamma_one);
  EXPECT_EQ(a.community, b.community);
}

TEST(Resolution, HigherGammaYieldsMoreCommunities) {
  const auto g = make_ssca2_graph();
  dl::LouvainConfig lo;
  lo.resolution = 0.3;
  dl::LouvainConfig hi;
  hi.resolution = 3.0;
  const auto coarse = dl::louvain_serial(g, lo);
  const auto fine = dl::louvain_serial(g, hi);
  EXPECT_GT(fine.num_communities, coarse.num_communities);
}

TEST(Resolution, ModularityGammaAgreesWithReference) {
  const auto g = make_rmat_graph();
  std::vector<CommunityId> part(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t v = 0; v < part.size(); ++v) part[v] = static_cast<CommunityId>(v % 5);
  for (const double gamma : {0.5, 1.0, 2.0}) {
    EXPECT_NEAR(dl::modularity(g, part, gamma), dl::modularity_reference(g, part, gamma),
                1e-12);
  }
}

TEST(Resolution, DistributedRespectsGamma) {
  const auto g = make_ssca2_graph();
  core::DistConfig lo;
  lo.base.resolution = 0.3;
  core::DistConfig hi;
  hi.base.resolution = 3.0;
  const auto coarse = core::dist_louvain_inprocess(3, g, lo);
  const auto fine = core::dist_louvain_inprocess(3, g, hi);
  EXPECT_GT(fine.num_communities, coarse.num_communities);
  // Reported value is Q_gamma of the final assignment.
  EXPECT_NEAR(fine.modularity, dl::modularity(g, fine.community, 3.0), 1e-9);
  EXPECT_NEAR(coarse.modularity, dl::modularity(g, coarse.community, 0.3), 1e-9);
}

TEST(Resolution, SharedRespectsGamma) {
  const auto g = make_ssca2_graph();
  dl::LouvainConfig hi;
  hi.resolution = 4.0;
  const auto fine = dl::louvain_shared(g, hi);
  const auto plain = dl::louvain_shared(g, {});
  EXPECT_GT(fine.num_communities, plain.num_communities);
}

// ---- Fault tolerance: checkpoints, crash recovery, fault sweeps ----------------

namespace {

/// A fresh (removed-if-existing) scratch directory under the system tmpdir.
std::filesystem::path fresh_dir(const std::string& name) {
  auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace

TEST(Checkpoint, KilledAndResumedRunIsBitwiseIdentical) {
  // The ISSUE's acceptance bar: for EVERY phase k, kill a rank at phase k,
  // recover from the last checkpoint, and land on bit-identical communities
  // and modularity versus the uninterrupted run.
  const auto g = make_lfr_graph();
  const int p = 3;
  const auto reference = dlouvain::Plan::distributed(p).run(g);
  ASSERT_GE(reference.phases, 2) << "fixture must run multiple phases";

  for (int k = 0; k < reference.phases; ++k) {
    const auto dir = fresh_dir("dl_ckpt_kill_at_" + std::to_string(k));
    const auto result = dlouvain::Plan::distributed(p)
                            .checkpointing(dir.string())
                            .inject_faults(dc::FaultPlan().crash(1, k))
                            .max_restarts(1)
                            .run(g);
    EXPECT_EQ(result.community, reference.community) << "killed at phase " << k;
    EXPECT_EQ(result.modularity, reference.modularity) << "killed at phase " << k;
    EXPECT_EQ(result.phases, reference.phases) << "killed at phase " << k;
    EXPECT_EQ(result.recovery.attempts, 2) << "killed at phase " << k;
    // Phase 0 has no checkpoint yet (fresh restart); later kills resume from
    // the checkpoint taken at the killed phase's boundary.
    EXPECT_EQ(result.recovery.resumed_from_phase, k == 0 ? -1 : k)
        << "killed at phase " << k;
    std::filesystem::remove_all(dir);
  }
}

TEST(Checkpoint, SparseCadenceReplaysInterveningPhases) {
  const auto g = make_lfr_graph();
  const int p = 2;
  const auto reference = dlouvain::Plan::distributed(p).run(g);
  ASSERT_GE(reference.phases, 3);

  // Checkpoint every 2 phases, kill at phase 2 (a checkpoint boundary) and
  // at phase 3 (not one: recovery replays phase 2 as well).
  for (const int k : {2, 3}) {
    if (k >= reference.phases) continue;
    const auto dir = fresh_dir("dl_ckpt_sparse_" + std::to_string(k));
    const auto result = dlouvain::Plan::distributed(p)
                            .checkpointing(dir.string(), /*every=*/2)
                            .inject_faults(dc::FaultPlan().crash(0, k))
                            .max_restarts(1)
                            .run(g);
    EXPECT_EQ(result.community, reference.community) << "killed at phase " << k;
    EXPECT_EQ(result.modularity, reference.modularity) << "killed at phase " << k;
    EXPECT_EQ(result.recovery.resumed_from_phase, 2) << "killed at phase " << k;
    std::filesystem::remove_all(dir);
  }
}

TEST(Checkpoint, ResumeAtDifferentRankCount) {
  // Kill a 4-rank job with no restarts budgeted; resume the SAME checkpoint
  // directory on 2 ranks. Cross-p bitwise identity is out of scope (sweep
  // orders are partition-keyed) but the result must be a valid clustering
  // with exact bookkeeping in the reference quality band.
  const auto g = make_ssca2_graph();
  const auto reference = dlouvain::Plan::distributed(4).run(g);
  ASSERT_GE(reference.phases, 2);

  const auto dir = fresh_dir("dl_ckpt_rescale");
  EXPECT_THROW((void)dlouvain::Plan::distributed(4)
                   .checkpointing(dir.string())
                   .inject_faults(dc::FaultPlan().crash(2, 1))
                   .run(g),
               dc::RankCrashed);

  const auto resumed = dlouvain::Plan::distributed(2).resume(dir.string()).run(g);
  EXPECT_EQ(resumed.recovery.resumed_from_phase, 1);
  EXPECT_NEAR(resumed.modularity, dl::modularity(g, resumed.community), 1e-9);
  EXPECT_GT(resumed.modularity, reference.modularity - 0.05);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, ConfigMismatchIsRejected) {
  const auto g = make_banded_graph();
  const auto dir = fresh_dir("dl_ckpt_mismatch");
  const auto first =
      dlouvain::Plan::distributed(2).checkpointing(dir.string()).run(g);
  ASSERT_GE(first.phases, 2) << "no checkpoint was ever written";

  // Same directory, different seed: resuming would silently mix two
  // incompatible trajectories, so it must refuse loudly.
  EXPECT_THROW(
      (void)dlouvain::Plan::distributed(2).seed(1234).resume(dir.string()).run(g),
      std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, CorruptCheckpointFallsBackToFreshStart) {
  const auto g = make_banded_graph();
  const auto reference = dlouvain::Plan::distributed(2).run(g);
  const auto dir = fresh_dir("dl_ckpt_corrupt");
  (void)dlouvain::Plan::distributed(2).checkpointing(dir.string()).run(g);
  const auto latest = core::checkpoint_latest_phase(dir.string());
  ASSERT_TRUE(latest.has_value());

  // Flip one byte in the committed meta record: the CRC must reject it and
  // the resume must degrade to a fresh (still-correct) run.
  const auto meta_path =
      dir / ("phase_" + std::to_string(*latest)) / "meta.bin";
  {
    std::fstream f(meta_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(12);
    char byte = 0;
    f.seekg(12);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(12);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(core::checkpoint_latest_phase(dir.string()).has_value());

  const auto resumed = dlouvain::Plan::distributed(2).resume(dir.string()).run(g);
  EXPECT_EQ(resumed.recovery.resumed_from_phase, -1);  // fresh start
  EXPECT_EQ(resumed.community, reference.community);
  EXPECT_EQ(resumed.modularity, reference.modularity);
  std::filesystem::remove_all(dir);
}

TEST(FaultSweep, CrashEachRankAtEachPhaseRecoversBitwise) {
  // Exhaustive small sweep: every rank x every phase, with checkpointing and
  // one restart budgeted. Each scenario must converge to the reference bits.
  const auto g = make_banded_graph();
  const int p = 3;
  const auto reference = dlouvain::Plan::distributed(p).run(g);
  ASSERT_GE(reference.phases, 2);
  const int phases_to_test = std::min(reference.phases, 3);

  for (int rank = 0; rank < p; ++rank) {
    for (int phase = 0; phase < phases_to_test; ++phase) {
      const auto dir = fresh_dir("dl_sweep_r" + std::to_string(rank) + "_ph" +
                                 std::to_string(phase));
      const auto result = dlouvain::Plan::distributed(p)
                              .checkpointing(dir.string())
                              .inject_faults(dc::FaultPlan().crash(rank, phase))
                              .max_restarts(1)
                              .run(g);
      EXPECT_EQ(result.community, reference.community)
          << "rank " << rank << " killed at phase " << phase;
      EXPECT_EQ(result.modularity, reference.modularity)
          << "rank " << rank << " killed at phase " << phase;
      EXPECT_EQ(result.recovery.attempts, 2)
          << "rank " << rank << " killed at phase " << phase;
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(FaultSweep, RestartWithoutCheckpointingStillRecovers) {
  // No checkpoint dir: recovery degrades to a full restart, which the
  // one-shot crash trigger lets succeed.
  const auto g = make_banded_graph();
  const auto reference = dlouvain::Plan::distributed(2).run(g);
  const auto result = dlouvain::Plan::distributed(2)
                          .inject_faults(dc::FaultPlan().crash(1, 1))
                          .max_restarts(1)
                          .run(g);
  EXPECT_EQ(result.community, reference.community);
  EXPECT_EQ(result.modularity, reference.modularity);
  EXPECT_EQ(result.recovery.attempts, 2);
  EXPECT_EQ(result.recovery.resumed_from_phase, -1);
}

TEST(FaultSweep, ExhaustedRestartBudgetRethrows) {
  const auto g = make_banded_graph();
  EXPECT_THROW((void)dlouvain::Plan::distributed(2)
                   .inject_faults(
                       dc::FaultPlan().crash(0, 0).crash(0, 0, 1).crash(1, 0))
                   .max_restarts(0)
                   .run(g),
               dc::RankCrashed);
}

TEST(FaultSweep, ExhaustedBudgetStillAccountsTheFinalAttempt) {
  // Regression (pre-ladder bug): when the restart budget ran out, the driver
  // threw BEFORE booking the final attempt's replayed phases and wasted
  // traffic, so a failed run's manifest under-reported its own cost. The
  // rethrow must now come after the accounting, and the manifest must still
  // be written (best-effort) so the waste is visible post-mortem.
  const auto g = make_banded_graph();
  const auto manifest =
      std::filesystem::temp_directory_path() / "dl_failed_run_manifest.json";
  std::filesystem::remove(manifest);
  EXPECT_THROW((void)dlouvain::Plan::distributed(2)
                   .inject_faults(dc::FaultPlan().crash(0, 0).crash(0, 0, 1))
                   .max_restarts(1)
                   .metrics(manifest.string())
                   .run(g),
               dc::RankCrashed);

  ASSERT_TRUE(std::filesystem::exists(manifest)) << "failed run wrote no manifest";
  std::ifstream in(manifest);
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto field = [&](const std::string& name) {
    const auto pos = json.find("\"" + name + "\":");
    EXPECT_NE(pos, std::string::npos) << name << " missing in:\n" << json;
    return std::stoll(json.substr(pos + name.size() + 3));
  };
  EXPECT_EQ(field("attempts"), 2);       // both attempts counted...
  EXPECT_GT(field("wasted_messages"), 0);  // ...and both attempts' traffic
  EXPECT_GT(field("wasted_bytes"), 0);
  EXPECT_EQ(field("injected_crashes"), 2);
  std::filesystem::remove(manifest);
}

TEST(RecoveryLadder, LossAndCorruptionAbsorbedWithoutRestart) {
  // Rung 1 under the full algorithm: a lossy, corrupting wire with an ARQ
  // budget must produce the clean run's exact bits in ONE attempt -- the
  // whole point of repairing at the link instead of restarting the job.
  const auto g = make_banded_graph();
  const auto reference = dlouvain::Plan::distributed(3).run(g);
  const auto noisy = dlouvain::Plan::distributed(3)
                         .retransmit(6, /*backoff_ms=*/0.2)
                         .inject_faults(dc::FaultPlan()
                                            .with_seed(9)
                                            .lose(0.01)
                                            .corrupt(0.01))
                         .run(g);
  EXPECT_EQ(noisy.community, reference.community);
  EXPECT_EQ(noisy.modularity, reference.modularity);
  EXPECT_EQ(noisy.recovery.attempts, 1);
  EXPECT_GT(noisy.recovery.injected_losses + noisy.recovery.injected_corruptions, 0);
  EXPECT_GE(noisy.recovery.retransmits, 1);
  EXPECT_GE(noisy.recovery.nacks, noisy.recovery.retransmits);
  EXPECT_EQ(noisy.recovery.escalations, 0);
  EXPECT_EQ(noisy.recovery.shrinks, 0);
  EXPECT_EQ(noisy.recovery.final_ranks, 3);
}

TEST(RecoveryLadder, RankDeathWithoutShrinkPropagates) {
  // A permanent death with shrink disabled must NOT burn the restart budget
  // retrying against dead hardware: the typed RankDead verdict surfaces on
  // the first attempt.
  const auto g = make_banded_graph();
  try {
    (void)dlouvain::Plan::distributed(2)
        .inject_faults(dc::FaultPlan().kill(0, 0))
        .max_restarts(3)
        .run(g);
    FAIL() << "expected RankDead";
  } catch (const dc::RankDead& e) {
    EXPECT_EQ(e.rank, 0);
  }
}

TEST(RecoveryLadder, ShrinkToSurvivorsMatchesCleanResumeBitwise) {
  // Rung 3 end to end. Stage one run to leave a phase-1 checkpoint, resume
  // it cleanly at p-1 ranks (the reference trajectory); then run the ladder
  // path -- permanent kill at phase 1, shrink enabled -- and require the
  // SAME bits: a shrink resume is exactly a clean p-1 resume.
  const auto g = make_lfr_graph();
  const int p = 3;

  const auto setup = fresh_dir("dl_shrink_setup");
  EXPECT_THROW((void)dlouvain::Plan::distributed(p)
                   .checkpointing(setup.string())
                   .inject_faults(dc::FaultPlan().crash(1, 1))
                   .max_restarts(0)
                   .run(g),
               dc::RankCrashed);
  const auto reference =
      dlouvain::Plan::distributed(p - 1).resume(setup.string()).run(g);
  EXPECT_EQ(reference.recovery.resumed_from_phase, 1);

  const auto dir = fresh_dir("dl_shrink_auto");
  const auto result = dlouvain::Plan::distributed(p)
                          .checkpointing(dir.string())
                          .inject_faults(dc::FaultPlan().kill(1, 1))
                          .shrink_on_rank_loss()
                          .max_restarts(2)
                          .run(g);
  EXPECT_EQ(result.community, reference.community);
  EXPECT_EQ(result.modularity, reference.modularity);
  EXPECT_EQ(result.recovery.attempts, 2);
  EXPECT_EQ(result.recovery.verdicts_dead, 1);
  EXPECT_EQ(result.recovery.shrinks, 1);
  EXPECT_EQ(result.recovery.final_ranks, p - 1);
  EXPECT_EQ(result.recovery.resumed_from_phase, 1);
  std::filesystem::remove_all(setup);
  std::filesystem::remove_all(dir);
}

TEST(FaultSweep, LouvainSurvivesMessageDuplicationAndDelay) {
  // Full algorithm under a noisy wire: every result bit must match the
  // clean run (duplicates absorbed by seq numbers, delays by FIFO waits).
  const auto g = make_banded_graph();
  const auto reference = dlouvain::Plan::distributed(3).run(g);
  const auto noisy = dlouvain::Plan::distributed(3)
                         .inject_faults(dc::FaultPlan()
                                            .with_seed(5)
                                            .duplicate(0.05)
                                            .delay(0.02, 0.5))
                         .run(g);
  EXPECT_EQ(noisy.community, reference.community);
  EXPECT_EQ(noisy.modularity, reference.modularity);
}

// ---- Hardened binary I/O -------------------------------------------------------

TEST(BinaryIo, RejectsOutOfRangeEndpoints) {
  const auto path = std::filesystem::temp_directory_path() / "dl_bad_endpoint.dlel";
  // Declare 4 vertices but smuggle in an edge to vertex 9 -- the payload
  // that used to drive an out-of-bounds write through the degree counters.
  dg::write_binary(path.string(), 10, {{0, 9, 1.0}, {1, 2, 1.0}});
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(8);
    const std::int64_t n = 4;
    f.write(reinterpret_cast<const char*>(&n), 8);
  }
  // The header edit invalidates the CRC too; check the record validator
  // alone by probing the slice reader (header still parses: n=4, m=2).
  EXPECT_THROW((void)dg::read_binary_slice(path.string(), 0, 2), std::runtime_error);
  EXPECT_FALSE(dg::verify_binary_crc(path.string()));
  std::filesystem::remove(path);
}

TEST(BinaryIo, RejectsNonFiniteAndNegativeWeights) {
  const auto path = std::filesystem::temp_directory_path() / "dl_bad_weight.dlel";
  for (const double w : {std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity(), -1.0}) {
    dg::write_binary(path.string(), 4, {{0, 1, w}});
    EXPECT_THROW((void)dg::read_binary_slice(path.string(), 0, 1), std::runtime_error)
        << "weight " << w;
  }
  std::filesystem::remove(path);
}

TEST(BinaryIo, CrcFooterDetectsBitRot) {
  const auto path = std::filesystem::temp_directory_path() / "dl_bitrot.dlel";
  dg::write_binary(path.string(), 6, {{0, 1, 1.0}, {2, 3, 1.0}, {4, 5, 1.0}});
  EXPECT_TRUE(dg::verify_binary_crc(path.string()));

  // Flip one bit in the middle of a record: header still parses, size still
  // matches, but the CRC must catch it.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(40);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(40);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(dg::verify_binary_crc(path.string()));
  EXPECT_THROW(dc::run(2,
                       [&](dc::Comm& comm) {
                         (void)dg::load_distributed(comm, path.string());
                       }),
               std::runtime_error);
  std::filesystem::remove(path);
}

TEST(BinaryIo, VersionOneFilesRemainReadable) {
  // Hand-write a v1 file (no footer): header + records with the old magic.
  const auto path = std::filesystem::temp_directory_path() / "dl_v1.dlel";
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    const std::uint64_t magic = 0x444c454c30303031ULL;  // "DLEL0001"
    const std::int64_t n = 3, m = 2;
    f.write(reinterpret_cast<const char*>(&magic), 8);
    f.write(reinterpret_cast<const char*>(&n), 8);
    f.write(reinterpret_cast<const char*>(&m), 8);
    const struct { std::int64_t s, d; double w; } recs[2] = {{0, 1, 1.0}, {1, 2, 2.0}};
    f.write(reinterpret_cast<const char*>(recs), sizeof recs);
  }
  const auto header = dg::read_binary_header(path.string());
  EXPECT_EQ(header.num_vertices, 3);
  EXPECT_EQ(header.num_edges, 2);
  EXPECT_FALSE(header.has_crc);
  EXPECT_TRUE(dg::verify_binary_crc(path.string()));  // nothing to verify
  const auto edges = dg::read_binary_slice(path.string(), 0, 2);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[1].weight, 2.0);
  std::filesystem::remove(path);
}

TEST(BinaryIo, WriteDistributedSealsAVerifiableFile) {
  const auto path = std::filesystem::temp_directory_path() / "dl_dist_sealed.dlel";
  const auto g = make_banded_graph();
  dc::run(3, [&](dc::Comm& comm) {
    auto dist = dg::DistGraph::from_replicated(comm, g);
    dg::write_distributed(comm, dist, path.string());
  });
  EXPECT_TRUE(dg::read_binary_header(path.string()).has_crc);
  EXPECT_TRUE(dg::verify_binary_crc(path.string()));
  std::filesystem::remove(path);
}
