// Validation of the distributed Louvain implementation: correctness of the
// distributed bookkeeping (reported modularity must equal an independent
// recomputation on the original global graph), agreement with the serial
// reference within the paper's <1% band, behaviour of every heuristic
// variant, and telemetry coherence -- all across rank counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "comm/world.hpp"
#include "core/dist_config.hpp"
#include "core/dist_louvain.hpp"
#include "gen/lfr.hpp"
#include "gen/simple.hpp"
#include "gen/ssca2.hpp"
#include "graph/csr.hpp"
#include "louvain/modularity.hpp"
#include "louvain/serial.hpp"

namespace core = dlouvain::core;
namespace dg = dlouvain::graph;
namespace gen = dlouvain::gen;
namespace dl = dlouvain::louvain;
using dlouvain::CommunityId;
using dlouvain::Edge;
using dlouvain::VertexId;

namespace {

dg::Csr two_triangles() {
  return dg::from_edges(6, {{0, 1, 1},
                            {1, 2, 1},
                            {0, 2, 1},
                            {3, 4, 1},
                            {4, 5, 1},
                            {3, 5, 1},
                            {2, 3, 1}});
}

/// The core exactness check: the result's modularity, which the distributed
/// code assembled from per-rank ledgers across phases and rebuilds, must
/// equal an independent serial recomputation on the ORIGINAL graph.
void expect_exact_bookkeeping(const dg::Csr& g, const core::DistResult& result) {
  ASSERT_EQ(result.community.size(), static_cast<std::size_t>(g.num_vertices()));
  EXPECT_NEAR(result.modularity, dl::modularity(g, result.community), 1e-9);
}

void expect_compact_ids(const core::DistResult& result) {
  std::set<CommunityId> ids(result.community.begin(), result.community.end());
  EXPECT_EQ(static_cast<CommunityId>(ids.size()), result.num_communities);
  if (!ids.empty()) {
    EXPECT_EQ(*ids.begin(), 0);
    EXPECT_EQ(*ids.rbegin(), result.num_communities - 1);
  }
}

}  // namespace

class DistLouvainAtP : public ::testing::TestWithParam<int> {};

TEST_P(DistLouvainAtP, FindsTheTwoTriangles) {
  const int p = GetParam();
  const auto g = two_triangles();
  const auto result = core::dist_louvain_inprocess(p, g);
  EXPECT_EQ(result.num_communities, 2);
  EXPECT_EQ(result.community[0], result.community[1]);
  EXPECT_EQ(result.community[1], result.community[2]);
  EXPECT_EQ(result.community[3], result.community[4]);
  EXPECT_EQ(result.community[4], result.community[5]);
  EXPECT_NE(result.community[0], result.community[3]);
  EXPECT_NEAR(result.modularity, 6.0 / 7.0 - 0.5, 1e-12);
  expect_exact_bookkeeping(g, result);
  expect_compact_ids(result);
}

TEST_P(DistLouvainAtP, CliqueChainRecoversAllCliques) {
  const int p = GetParam();
  const auto graph = gen::clique_chain(10, 6);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = core::dist_louvain_inprocess(p, g);
  EXPECT_EQ(result.num_communities, 10);
  for (VertexId c = 0; c < 10; ++c)
    for (VertexId i = 1; i < 6; ++i)
      EXPECT_EQ(result.community[static_cast<std::size_t>(c * 6)],
                result.community[static_cast<std::size_t>(c * 6 + i)]);
  expect_exact_bookkeeping(g, result);
}

TEST_P(DistLouvainAtP, BookkeepingExactOnIrregularGraph) {
  const int p = GetParam();
  gen::LfrParams params;
  params.num_vertices = 300;
  params.avg_degree = 12;
  params.max_degree = 36;
  params.mu = 0.3;
  const auto graph = gen::lfr(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = core::dist_louvain_inprocess(p, g);
  expect_exact_bookkeeping(g, result);
  expect_compact_ids(result);
}

TEST_P(DistLouvainAtP, WithinOnePercentOfSerialModularity) {
  // Paper, single-node comparison: "the modularity difference was found to
  // be under 1%".
  const int p = GetParam();
  gen::Ssca2Params params;
  params.num_vertices = 600;
  params.max_clique_size = 20;
  params.inter_clique_prob = 0.02;
  const auto graph = gen::ssca2(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  const auto serial = dl::louvain_serial(g);
  const auto dist = core::dist_louvain_inprocess(p, g);
  EXPECT_GT(dist.modularity, serial.modularity * 0.99)
      << "p=" << p << " dist=" << dist.modularity << " serial=" << serial.modularity;
}

TEST_P(DistLouvainAtP, WeightedGraphHandledExactly) {
  const int p = GetParam();
  const auto g = dg::from_edges(
      6, {{0, 1, 2.5}, {1, 2, 0.5}, {0, 2, 1.5}, {3, 4, 4.0}, {4, 5, 0.25}, {2, 3, 0.1}});
  const auto result = core::dist_louvain_inprocess(p, g);
  expect_exact_bookkeeping(g, result);
}

TEST_P(DistLouvainAtP, IsolatedVerticesStaySingleton) {
  const int p = GetParam();
  // Triangle plus three isolated vertices.
  const auto g = dg::from_edges(6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}});
  const auto result = core::dist_louvain_inprocess(p, g);
  EXPECT_EQ(result.num_communities, 4);
  EXPECT_NE(result.community[3], result.community[4]);
  EXPECT_NE(result.community[4], result.community[5]);
  expect_exact_bookkeeping(g, result);
}

TEST_P(DistLouvainAtP, TelemetryIsCoherent) {
  const int p = GetParam();
  const auto graph = gen::clique_chain(8, 5);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = core::dist_louvain_inprocess(p, g);

  EXPECT_EQ(result.phase_telemetry.size(), static_cast<std::size_t>(result.phases));
  long iters = 0;
  for (const auto& phase : result.phase_telemetry) {
    iters += phase.iterations;
    EXPECT_GT(phase.iterations, 0);
    EXPECT_GT(phase.graph_vertices, 0);
    EXPECT_GE(phase.seconds, 0.0);
    EXPECT_EQ(phase.iteration_detail.size(), static_cast<std::size_t>(phase.iterations));
    // Breakdown buckets are all populated and non-negative.
    EXPECT_GE(phase.breakdown.ghost_exchange, 0.0);
    EXPECT_GE(phase.breakdown.compute, 0.0);
    EXPECT_GE(phase.breakdown.allreduce, 0.0);
  }
  EXPECT_EQ(iters, result.total_iterations);
  // Phase modularity never decreases (tolerate fp noise).
  for (std::size_t i = 1; i < result.phase_telemetry.size(); ++i)
    EXPECT_GE(result.phase_telemetry[i].modularity_after + 1e-9,
              result.phase_telemetry[i - 1].modularity_after);
  if (p > 1) {
    EXPECT_GT(result.messages, 0);
    EXPECT_GT(result.bytes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, DistLouvainAtP, ::testing::Values(1, 2, 3, 4, 8));

// ---- Heuristic variants ------------------------------------------------------

class VariantQuality : public ::testing::TestWithParam<core::DistConfig> {};

TEST_P(VariantQuality, QualityWithinBandOfBaseline) {
  const auto& cfg = GetParam();
  gen::Ssca2Params params;
  params.num_vertices = 800;
  params.max_clique_size = 25;
  params.inter_clique_prob = 0.02;
  const auto graph = gen::ssca2(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  const auto baseline = core::dist_louvain_inprocess(3, g, core::DistConfig::baseline());
  const auto variant = core::dist_louvain_inprocess(3, g, cfg);
  // Paper: threshold cycling costs < 3% modularity; ET "negligible" loss.
  EXPECT_GT(variant.modularity, baseline.modularity - 0.03)
      << core::variant_label(cfg.variant, cfg.base.et_alpha);
  expect_exact_bookkeeping(g, variant);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantQuality,
                         ::testing::Values(core::DistConfig::threshold_cycling(),
                                           core::DistConfig::et(0.25),
                                           core::DistConfig::et(0.75),
                                           core::DistConfig::etc(0.25),
                                           core::DistConfig::etc(0.75)));

TEST(DistVariants, ThresholdCyclingUsesScheduledTaus) {
  const auto cfg = core::DistConfig::threshold_cycling();
  EXPECT_DOUBLE_EQ(cfg.threshold_for_phase(0), 1e-3);
  EXPECT_DOUBLE_EQ(cfg.threshold_for_phase(2), 1e-3);
  EXPECT_DOUBLE_EQ(cfg.threshold_for_phase(3), 1e-4);
  EXPECT_DOUBLE_EQ(cfg.threshold_for_phase(6), 1e-4);
  EXPECT_DOUBLE_EQ(cfg.threshold_for_phase(7), 1e-5);
  EXPECT_DOUBLE_EQ(cfg.threshold_for_phase(10), 1e-6);
  EXPECT_DOUBLE_EQ(cfg.threshold_for_phase(12), 1e-6);
  // Cycle repeats from phase 13 (paper Fig. 2).
  EXPECT_DOUBLE_EQ(cfg.threshold_for_phase(13), 1e-3);
  EXPECT_DOUBLE_EQ(cfg.min_threshold(), 1e-6);
}

TEST(DistVariants, BaselineThresholdIsFlat) {
  const core::DistConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.threshold_for_phase(0), cfg.base.threshold);
  EXPECT_DOUBLE_EQ(cfg.threshold_for_phase(9), cfg.base.threshold);
}

TEST(DistVariants, VariantLabelsMatchPaperLegend) {
  EXPECT_EQ(core::variant_label(core::Variant::kBaseline, 0), "Baseline");
  EXPECT_EQ(core::variant_label(core::Variant::kThresholdCycling, 0), "Threshold Cycling");
  EXPECT_EQ(core::variant_label(core::Variant::kEt, 0.25), "ET(0.25)");
  EXPECT_EQ(core::variant_label(core::Variant::kEtc, 0.75), "ETC(0.75)");
}

TEST(DistVariants, EtcRecordsInactiveCounts) {
  gen::Ssca2Params params;
  params.num_vertices = 400;
  params.max_clique_size = 15;
  const auto graph = gen::ssca2(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = core::dist_louvain_inprocess(2, g, core::DistConfig::etc(0.75));
  bool saw_inactive = false;
  for (const auto& phase : result.phase_telemetry)
    for (const auto& it : phase.iteration_detail) saw_inactive |= it.inactive_vertices > 0;
  EXPECT_TRUE(saw_inactive);
}

TEST(DistVariants, AggressiveEtReducesActiveWork) {
  // With alpha=1 any quiet vertex deactivates immediately, so summed active
  // counts must be below the baseline's.
  gen::Ssca2Params params;
  params.num_vertices = 600;
  params.max_clique_size = 20;
  const auto graph = gen::ssca2(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  auto active_total = [](const core::DistResult& r) {
    std::int64_t total = 0;
    for (const auto& ph : r.phase_telemetry)
      for (const auto& it : ph.iteration_detail) total += it.active_vertices;
    return total;
  };

  const auto baseline = core::dist_louvain_inprocess(2, g, core::DistConfig::baseline());
  const auto aggressive = core::dist_louvain_inprocess(2, g, core::DistConfig::et(1.0));
  EXPECT_LT(active_total(aggressive), active_total(baseline));
}

TEST(DistVariants, EtPlusThresholdCyclingCombination) {
  // Table VI's combination must run and stay in the quality band.
  gen::Ssca2Params params;
  params.num_vertices = 500;
  params.max_clique_size = 20;
  const auto graph = gen::ssca2(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  auto cfg = core::DistConfig::et(0.25);
  cfg.add_threshold_cycling = true;
  EXPECT_TRUE(cfg.uses_cycling());
  EXPECT_TRUE(cfg.uses_et());
  const auto result = core::dist_louvain_inprocess(2, g, cfg);
  const auto baseline = core::dist_louvain_inprocess(2, g);
  EXPECT_GT(result.modularity, baseline.modularity - 0.03);
}

// ---- Cross-p robustness ------------------------------------------------------

TEST(DistLouvain, ModularityStableAcrossRankCounts) {
  gen::LfrParams params;
  params.num_vertices = 400;
  params.avg_degree = 14;
  params.max_degree = 40;
  params.mu = 0.25;
  const auto graph = gen::lfr(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);

  std::vector<double> mods;
  for (int p : {1, 2, 4, 8}) mods.push_back(core::dist_louvain_inprocess(p, g).modularity);
  const auto [lo, hi] = std::minmax_element(mods.begin(), mods.end());
  EXPECT_LT(*hi - *lo, 0.02) << "modularity drifts too much with rank count";
}

TEST(DistLouvain, MoreRanksThanVertices) {
  const auto g = two_triangles();
  const auto result = core::dist_louvain_inprocess(8, g);
  EXPECT_EQ(result.num_communities, 2);
  expect_exact_bookkeeping(g, result);
}

TEST(DistLouvain, VertexBalancedPartitionAlsoWorks) {
  const auto graph = gen::clique_chain(6, 5);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = core::dist_louvain_inprocess(
      3, g, {}, dg::PartitionKind::kEvenVertices);
  EXPECT_EQ(result.num_communities, 6);
  expect_exact_bookkeeping(g, result);
}

TEST(DistLouvain, DirectRunMatchesInprocessWrapper) {
  const auto g = two_triangles();
  core::DistResult direct;
  dlouvain::comm::run(2, [&](dlouvain::comm::Comm& comm) {
    auto dist = dg::DistGraph::from_replicated(comm, g);
    auto r = core::dist_louvain(comm, std::move(dist), {});
    if (comm.rank() == 0) direct = std::move(r);
  });
  const auto wrapped = core::dist_louvain_inprocess(2, g);
  EXPECT_EQ(direct.community, wrapped.community);
  EXPECT_EQ(direct.modularity, wrapped.modularity);
}

TEST(DistLouvain, ResultIdenticalOnAllRanks) {
  const auto graph = gen::clique_chain(5, 4);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  std::vector<core::DistResult> results(3);
  dlouvain::comm::run(3, [&](dlouvain::comm::Comm& comm) {
    auto dist = dg::DistGraph::from_replicated(comm, g);
    results[static_cast<std::size_t>(comm.rank())] =
        core::dist_louvain(comm, std::move(dist), {});
  });
  for (int r = 1; r < 3; ++r) {
    EXPECT_EQ(results[0].community, results[static_cast<std::size_t>(r)].community);
    EXPECT_EQ(results[0].modularity, results[static_cast<std::size_t>(r)].modularity);
    EXPECT_EQ(results[0].phases, results[static_cast<std::size_t>(r)].phases);
  }
}

TEST(DistVariants, CyclingForcesFinalPhaseAtMinimumTau) {
  // A graph that converges within the first (relaxed-tau) phases: the run
  // must still end with a phase executed at the minimum threshold (paper
  // Section V-C-a: "always forces Louvain iteration to run once more with
  // the lowest threshold").
  const auto graph = gen::clique_chain(6, 5);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto cfg = core::DistConfig::threshold_cycling();
  const auto result = core::dist_louvain_inprocess(2, g, cfg);
  ASSERT_FALSE(result.phase_telemetry.empty());
  EXPECT_DOUBLE_EQ(result.phase_telemetry.back().threshold_used, cfg.min_threshold());
  // And the early phases really did use the relaxed schedule.
  EXPECT_DOUBLE_EQ(result.phase_telemetry.front().threshold_used, 1e-3);
}

TEST(DistLouvain, MediumScaleIntegration) {
  // A ~60k-arc LFR run across 6 ranks: end-to-end exactness and quality at a
  // size closer to the bench defaults.
  gen::LfrParams params;
  params.num_vertices = 3000;
  params.avg_degree = 20;
  params.max_degree = 60;
  params.mu = 0.3;
  params.seed = 77;
  const auto graph = gen::lfr(params);
  const auto g = dg::from_edges(graph.num_vertices, graph.edges);
  const auto result = core::dist_louvain_inprocess(6, g);
  EXPECT_NEAR(result.modularity, dl::modularity(g, result.community), 1e-9);
  EXPECT_GT(result.modularity, 0.55);
  const auto serial = dl::louvain_serial(g);
  EXPECT_GT(result.modularity, serial.modularity * 0.98);
}
