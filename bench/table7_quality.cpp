// Table VII: quality against LFR ground truth -- precision and F-score for
// five network sizes; the paper reports recall 1.0 throughout, precision
// falling gently from 0.98 toward 0.90 as the networks grow.
#include <iostream>

#include "bench/harness.hpp"
#include "core/dist_louvain.hpp"
#include "gen/lfr.hpp"
#include "graph/csr.hpp"
#include "quality/fscore.hpp"
#include "quality/nmi.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const auto sizes = cli.get_int_list("sizes", {1000, 1700, 2800, 4200, 5600},
                                      "LFR network sizes (vertices)");
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  const double mu = cli.get_double("mu", 0.12, "LFR mixing parameter");
  if (!cli.finish()) return 1;

  bench::banner("Table VII: quality vs LFR ground truth",
                "LFR networks of 350K-2M vertices on 32 processes; recall = 1.0",
                "LFR-style networks, mu=" + util::TextTable::fmt(mu, 2) + ", " +
                    std::to_string(ranks) + " ranks");

  util::TextTable table({"#Vertices", "#Edges", "Precision", "Recall", "F-score",
                         "NMI", "truth comms", "found comms"});
  for (const auto n : sizes) {
    gen::LfrParams params;
    params.num_vertices = n;
    params.avg_degree = 24;
    params.max_degree = 72;
    params.mu = mu;
    params.min_community = 20;
    params.max_community = std::max<VertexId>(60, n / 20);
    params.seed = 99 + static_cast<std::uint64_t>(n);
    const auto generated = gen::lfr(params);
    const auto csr = graph::from_edges(generated.num_vertices, generated.edges);

    const auto result = core::dist_louvain_inprocess(ranks, csr);
    const auto scores =
        quality::compare_to_ground_truth(result.community, generated.ground_truth);
    table.add_row({util::TextTable::fmt(csr.num_vertices()),
                   util::TextTable::fmt(csr.num_arcs() / 2),
                   util::TextTable::fmt(scores.precision, 6),
                   util::TextTable::fmt(scores.recall, 6),
                   util::TextTable::fmt(scores.f_score, 6),
                   util::TextTable::fmt(quality::normalized_mutual_information(
                                            result.community, generated.ground_truth),
                                        4),
                   util::TextTable::fmt(static_cast<std::int64_t>(scores.ground_truth_communities)),
                   util::TextTable::fmt(static_cast<std::int64_t>(scores.detected_communities))});
  }
  table.print(std::cout);
  return 0;
}
