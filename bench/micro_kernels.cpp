// Micro-benchmarks for the algorithmic kernels: CSR assembly, modularity
// evaluation, one Louvain sweep (hash-map baseline vs the flat
// ScatterAccumulator kernel the engines use), coarsening, and the generators
// feeding the table harnesses.
//
// Besides the usual Google-Benchmark mode, `--pr3_json=<path>` switches to a
// self-timed run that writes the machine-readable perf trail committed as
// BENCH_PR3.json: per-kernel ns/op plus a distributed run's sweep time
// breakdown (see docs/PERFORMANCE.md). Knobs: `--pr3_scale=N` (RMAT scale,
// default 16), `--pr3_reps=N` (best-of repetitions, default 5),
// `--pr3_dist_scale=N` (RMAT scale for the breakdown run, default 12).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/world.hpp"
#include "core/dist_louvain.hpp"
#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "gen/ssca2.hpp"
#include "graph/csr.hpp"
#include "louvain/coarsen.hpp"
#include "louvain/modularity.hpp"
#include "louvain/serial.hpp"
#include "louvain/shared.hpp"
#include "util/scatter.hpp"

namespace {

using namespace dlouvain;

gen::GeneratedGraph bench_graph(std::int64_t n) {
  gen::Ssca2Params p;
  p.num_vertices = n;
  p.max_clique_size = 25;
  p.inter_clique_prob = 0.01;
  return gen::ssca2(p);
}

gen::GeneratedGraph rmat_graph(int scale) {
  gen::RmatParams p;
  p.scale = scale;
  p.edges_per_vertex = 8;
  p.seed = 42;
  return gen::rmat(p);
}

// ---- one local-move sweep, hash baseline vs flat kernel ---------------------
// Both run the identical single-node sweep (the seed's serial inner loop):
// scan every vertex, accumulate neighbour-community weights, move to the
// best-gain community. The hash variant is the pre-PR3 unordered_map kernel,
// kept verbatim as the comparison baseline; the flat variant is the
// ScatterAccumulator kernel serial.cpp/shared.cpp/dist_louvain.cpp now use.
// Their outputs are identical (the argmax predicate is iteration-order
// independent), so `moved` doubles as a cross-check.

struct SweepInput {
  graph::Csr csr;
  std::vector<Weight> k;           ///< weighted degree per vertex
  std::vector<Weight> a_init;      ///< initial community degrees (= k)
  Weight m{0};                     ///< total edge weight
};

SweepInput make_sweep_input(const gen::GeneratedGraph& g) {
  SweepInput in;
  in.csr = graph::from_edges(g.num_vertices, g.edges);
  const auto n = static_cast<std::size_t>(in.csr.num_vertices());
  in.k.resize(n);
  for (VertexId v = 0; v < in.csr.num_vertices(); ++v)
    in.k[static_cast<std::size_t>(v)] = in.csr.weighted_degree(v);
  in.a_init = in.k;
  in.m = in.csr.total_arc_weight() / 2;
  return in;
}

std::int64_t sweep_hash(const SweepInput& in, std::vector<CommunityId>& curr,
                        std::vector<Weight>& a) {
  const VertexId n = in.csr.num_vertices();
  const Weight m = in.m;
  std::unordered_map<CommunityId, Weight> nbr_weight;
  std::int64_t moved = 0;
  for (VertexId v = 0; v < n; ++v) {
    const CommunityId own = curr[static_cast<std::size_t>(v)];
    const Weight kv = in.k[static_cast<std::size_t>(v)];
    nbr_weight.clear();
    for (const auto& e : in.csr.neighbors(v)) {
      if (e.dst == v) continue;
      nbr_weight[curr[static_cast<std::size_t>(e.dst)]] += e.weight;
    }
    const auto own_it = nbr_weight.find(own);
    const Weight e_own = own_it == nbr_weight.end() ? 0.0 : own_it->second;
    const Weight a_own_less_v = a[static_cast<std::size_t>(own)] - kv;
    CommunityId best = own;
    Weight best_gain = 0;
    for (const auto& [target, e_target] : nbr_weight) {
      if (target == own) continue;
      const Weight gain =
          (e_target - e_own) / m -
          kv * (a[static_cast<std::size_t>(target)] - a_own_less_v) / (2 * m * m);
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best != own && target < best)) {
        best = target;
        best_gain = gain;
      }
    }
    if (best != own) {
      a[static_cast<std::size_t>(own)] -= kv;
      a[static_cast<std::size_t>(best)] += kv;
      curr[static_cast<std::size_t>(v)] = best;
      ++moved;
    }
  }
  return moved;
}

std::int64_t sweep_flat(const SweepInput& in, std::vector<CommunityId>& curr,
                        std::vector<Weight>& a) {
  const VertexId n = in.csr.num_vertices();
  const Weight m = in.m;
  util::ScatterAccumulator<Weight> nbr_weight;
  std::int64_t moved = 0;
  for (VertexId v = 0; v < n; ++v) {
    const CommunityId own = curr[static_cast<std::size_t>(v)];
    const Weight kv = in.k[static_cast<std::size_t>(v)];
    nbr_weight.reset(n);
    for (const auto& e : in.csr.neighbors(v)) {
      if (e.dst == v) continue;
      nbr_weight.add(curr[static_cast<std::size_t>(e.dst)], e.weight);
    }
    const Weight e_own = nbr_weight.get(own);
    const Weight a_own_less_v = a[static_cast<std::size_t>(own)] - kv;
    CommunityId best = own;
    Weight best_gain = 0;
    for (const auto target : nbr_weight.touched()) {
      if (target == own) continue;
      const Weight e_target = nbr_weight.get(target);
      const Weight gain =
          (e_target - e_own) / m -
          kv * (a[static_cast<std::size_t>(target)] - a_own_less_v) / (2 * m * m);
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best != own && target < best)) {
        best = target;
        best_gain = gain;
      }
    }
    if (best != own) {
      a[static_cast<std::size_t>(own)] -= kv;
      a[static_cast<std::size_t>(best)] += kv;
      curr[static_cast<std::size_t>(v)] = best;
      ++moved;
    }
  }
  return moved;
}

template <typename Sweep>
std::int64_t timed_sweep(const SweepInput& in, Sweep&& sweep, int reps,
                         double& best_ns) {
  std::vector<CommunityId> curr(in.k.size());
  std::vector<Weight> a;
  std::int64_t moved = 0;
  best_ns = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    const auto t0 = std::chrono::steady_clock::now();
    moved = sweep(in, curr, a);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (ns < best_ns) best_ns = ns;
  }
  return moved;
}

void BM_CsrBuild(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  for (auto _ : state) {
    auto csr = graph::from_edges(g.num_vertices, g.edges);
    benchmark::DoNotOptimize(csr);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.edges.size()));
}
BENCHMARK(BM_CsrBuild)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_Modularity(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(louvain::modularity(csr, g.ground_truth));
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_Modularity)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SerialLouvain(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    auto result = louvain::louvain_serial(csr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_SerialLouvain)->Arg(1000)->Arg(4000);

void BM_SharedLouvain(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    auto result = louvain::louvain_shared(csr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_SharedLouvain)->Arg(1000)->Arg(4000);

void BM_Coarsen(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    auto coarse = louvain::coarsen(csr, g.ground_truth);
    benchmark::DoNotOptimize(coarse);
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_Coarsen)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GenLfr(benchmark::State& state) {
  gen::LfrParams p;
  p.num_vertices = state.range(0);
  p.avg_degree = 20;
  p.max_degree = 60;
  p.mu = 0.3;
  for (auto _ : state) {
    auto g = gen::lfr(p);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GenLfr)->Arg(1000)->Arg(4000);

void BM_GenSsca2(benchmark::State& state) {
  for (auto _ : state) {
    auto g = bench_graph(state.range(0));
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GenSsca2)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_LocalMoveSweepHash(benchmark::State& state) {
  const auto in = make_sweep_input(rmat_graph(static_cast<int>(state.range(0))));
  std::vector<CommunityId> curr(in.k.size());
  std::vector<Weight> a;
  for (auto _ : state) {
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    benchmark::DoNotOptimize(sweep_hash(in, curr, a));
  }
  state.SetItemsProcessed(state.iterations() * in.csr.num_arcs());
}
BENCHMARK(BM_LocalMoveSweepHash)->Arg(10)->Arg(12);

void BM_LocalMoveSweepFlat(benchmark::State& state) {
  const auto in = make_sweep_input(rmat_graph(static_cast<int>(state.range(0))));
  std::vector<CommunityId> curr(in.k.size());
  std::vector<Weight> a;
  for (auto _ : state) {
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    benchmark::DoNotOptimize(sweep_flat(in, curr, a));
  }
  state.SetItemsProcessed(state.iterations() * in.csr.num_arcs());
}
BENCHMARK(BM_LocalMoveSweepFlat)->Arg(10)->Arg(12);

// ---- the BENCH_PR3.json emitter ---------------------------------------------

int run_pr3(const std::string& json_path, int scale, int reps, int dist_scale) {
  const auto g = rmat_graph(scale);
  const auto in = make_sweep_input(g);
  const auto arcs = static_cast<double>(in.csr.num_arcs());

  double hash_ns = 0;
  const auto hash_moved = timed_sweep(in, sweep_hash, reps, hash_ns);
  double flat_ns = 0;
  const auto flat_moved = timed_sweep(in, sweep_flat, reps, flat_ns);
  if (hash_moved != flat_moved) {
    std::cerr << "micro_kernels: hash and flat sweeps diverged (" << hash_moved
              << " vs " << flat_moved << " moves)\n";
    return 1;
  }

  double coarsen_ns = 1e300;
  {
    // Coarsen by the sweep's resulting assignment (compacted ids).
    std::vector<CommunityId> curr(in.k.size());
    std::vector<Weight> a;
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    sweep_flat(in, curr, a);
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      auto coarse = louvain::coarsen(in.csr, curr);
      benchmark::DoNotOptimize(coarse);
      const auto t1 = std::chrono::steady_clock::now();
      const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
      if (ns < coarsen_ns) coarsen_ns = ns;
    }
  }

  // Distributed sweep breakdown (the telemetry split behind the paper's
  // Section V-A analysis), from a default-config run at a smaller scale.
  const auto gd = rmat_graph(dist_scale);
  const auto csrd = graph::from_edges(gd.num_vertices, gd.edges);
  core::TimeBreakdown breakdown;
  double dist_seconds = 0;
  comm::run(4, [&](comm::Comm& comm) {
    auto dist = graph::DistGraph::from_replicated(comm, csrd);
    core::DistConfig cfg;
    auto result = core::dist_louvain(comm, std::move(dist), cfg);
    if (comm.is_root()) {
      breakdown = result.breakdown;
      dist_seconds = result.seconds;
    }
  });

  std::ofstream out(json_path, std::ios::trunc);
  if (!out) {
    std::cerr << "micro_kernels: cannot open " << json_path << " for writing\n";
    return 1;
  }
  out.precision(17);
  out << "{\n"
      << "  \"bench\": \"micro_kernels.pr3\",\n"
      << "  \"graph\": {\"kind\": \"rmat\", \"scale\": " << scale
      << ", \"edges_per_vertex\": 8, \"seed\": 42, \"vertices\": "
      << in.csr.num_vertices() << ", \"arcs\": " << in.csr.num_arcs() << "},\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"kernels\": {\n"
      << "    \"local_move_hash\": {\"ns_per_op\": " << hash_ns
      << ", \"ns_per_arc\": " << hash_ns / arcs << ", \"moved\": " << hash_moved
      << "},\n"
      << "    \"local_move_flat\": {\"ns_per_op\": " << flat_ns
      << ", \"ns_per_arc\": " << flat_ns / arcs << ", \"moved\": " << flat_moved
      << "},\n"
      << "    \"coarsen_flat\": {\"ns_per_op\": " << coarsen_ns
      << ", \"ns_per_arc\": " << coarsen_ns / arcs << "}\n"
      << "  },\n"
      << "  \"ratios\": {\"local_move_hash_over_flat\": " << hash_ns / flat_ns
      << "},\n"
      << "  \"dist_breakdown\": {\"ranks\": 4, \"scale\": " << dist_scale
      << ", \"seconds\": " << dist_seconds
      << ", \"ghost_exchange\": " << breakdown.ghost_exchange
      << ", \"community_info\": " << breakdown.community_info
      << ", \"compute\": " << breakdown.compute
      << ", \"delta_exchange\": " << breakdown.delta_exchange
      << ", \"allreduce\": " << breakdown.allreduce
      << ", \"rebuild\": " << breakdown.rebuild << "}\n"
      << "}\n";
  std::cout << "local_move_hash: " << hash_ns / arcs << " ns/arc\n"
            << "local_move_flat: " << flat_ns / arcs << " ns/arc\n"
            << "speedup:         " << hash_ns / flat_ns << "x\n"
            << "wrote " << json_path << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int scale = 16;
  int reps = 5;
  int dist_scale = 12;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pr3_json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--pr3_json="));
    } else if (arg.rfind("--pr3_scale=", 0) == 0) {
      scale = std::stoi(arg.substr(std::strlen("--pr3_scale=")));
    } else if (arg.rfind("--pr3_reps=", 0) == 0) {
      reps = std::stoi(arg.substr(std::strlen("--pr3_reps=")));
    } else if (arg.rfind("--pr3_dist_scale=", 0) == 0) {
      dist_scale = std::stoi(arg.substr(std::strlen("--pr3_dist_scale=")));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return run_pr3(json_path, scale, reps, dist_scale);

  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
