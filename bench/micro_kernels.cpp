// Micro-benchmarks for the algorithmic kernels: CSR assembly, modularity
// evaluation, one Louvain sweep, coarsening, and the generators feeding the
// table harnesses.
#include <benchmark/benchmark.h>

#include <numeric>

#include "gen/lfr.hpp"
#include "gen/ssca2.hpp"
#include "graph/csr.hpp"
#include "louvain/coarsen.hpp"
#include "louvain/modularity.hpp"
#include "louvain/serial.hpp"
#include "louvain/shared.hpp"

namespace {

using namespace dlouvain;

gen::GeneratedGraph bench_graph(std::int64_t n) {
  gen::Ssca2Params p;
  p.num_vertices = n;
  p.max_clique_size = 25;
  p.inter_clique_prob = 0.01;
  return gen::ssca2(p);
}

void BM_CsrBuild(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  for (auto _ : state) {
    auto csr = graph::from_edges(g.num_vertices, g.edges);
    benchmark::DoNotOptimize(csr);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.edges.size()));
}
BENCHMARK(BM_CsrBuild)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_Modularity(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(louvain::modularity(csr, g.ground_truth));
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_Modularity)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SerialLouvain(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    auto result = louvain::louvain_serial(csr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_SerialLouvain)->Arg(1000)->Arg(4000);

void BM_SharedLouvain(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    auto result = louvain::louvain_shared(csr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_SharedLouvain)->Arg(1000)->Arg(4000);

void BM_Coarsen(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    auto coarse = louvain::coarsen(csr, g.ground_truth);
    benchmark::DoNotOptimize(coarse);
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_Coarsen)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GenLfr(benchmark::State& state) {
  gen::LfrParams p;
  p.num_vertices = state.range(0);
  p.avg_degree = 20;
  p.max_degree = 60;
  p.mu = 0.3;
  for (auto _ : state) {
    auto g = gen::lfr(p);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GenLfr)->Arg(1000)->Arg(4000);

void BM_GenSsca2(benchmark::State& state) {
  for (auto _ : state) {
    auto g = bench_graph(state.range(0));
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GenSsca2)->Arg(1000)->Arg(4000)->Arg(16000);

}  // namespace

BENCHMARK_MAIN();
