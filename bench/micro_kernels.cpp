// Micro-benchmarks for the algorithmic kernels: CSR assembly, modularity
// evaluation, one Louvain sweep (hash-map baseline vs the flat
// ScatterAccumulator kernel the engines use), coarsening, and the generators
// feeding the table harnesses.
//
// Besides the usual Google-Benchmark mode, `--pr3_json=<path>` switches to a
// self-timed run that writes the machine-readable perf trail committed as
// BENCH_PR3.json: per-kernel ns/op plus a distributed run's sweep time
// breakdown (see docs/PERFORMANCE.md). Knobs: `--pr3_scale=N` (RMAT scale,
// default 16), `--pr3_reps=N` (best-of repetitions, default 5),
// `--pr3_dist_scale=N` (RMAT scale for the breakdown run, default 12).
//
// `--pr5_json=<path>` writes the BENCH_PR5.json trail instead: the same
// kernel numbers plus the overlap on/off ablation (ISSUE 5) -- a distributed
// run per mode reporting the TimeBreakdown and the fraction of exchange
// latency the interior-first schedule hid behind compute, with an on==off
// result-identity cross-check. Knobs: `--pr5_scale=N` (kernel RMAT scale,
// default 16), `--pr5_reps=N` (default 5), `--pr5_dist_scale=N` (ablation
// RMAT scale, default 16), `--pr5_ranks=N` (default 8), `--pr5_delay_ms=X`
// (simulated per-message wire latency for the headline rows, default 1.0).
//
// `--pr8_json=<path>` writes the BENCH_PR8.json trail (ISSUE 8): the kernel
// table grows the segmented and SIMD sweep lanes (util/segmented.hpp)
// against the flat gather kernel, and an `overlap_auto` section runs the
// distributed algorithm under --overlap off/on/auto at zero and `delay_ms`
// simulated wire latency -- auto's wall must land within tolerance of the
// better forced mode, and its cost-model decision is recorded. Knobs mirror
// pr5: `--pr8_scale`, `--pr8_reps`, `--pr8_dist_scale`, `--pr8_ranks`,
// `--pr8_delay_ms`.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm/world.hpp"
#include "core/dist_louvain.hpp"
#include "gen/lfr.hpp"
#include "gen/rmat.hpp"
#include "gen/ssca2.hpp"
#include "graph/csr.hpp"
#include "louvain/coarsen.hpp"
#include "louvain/modularity.hpp"
#include "louvain/serial.hpp"
#include "louvain/shared.hpp"
#include "util/scatter.hpp"
#include "util/segmented.hpp"

namespace {

using namespace dlouvain;

gen::GeneratedGraph bench_graph(std::int64_t n) {
  gen::Ssca2Params p;
  p.num_vertices = n;
  p.max_clique_size = 25;
  p.inter_clique_prob = 0.01;
  return gen::ssca2(p);
}

gen::GeneratedGraph rmat_graph(int scale) {
  gen::RmatParams p;
  p.scale = scale;
  p.edges_per_vertex = 8;
  p.seed = 42;
  return gen::rmat(p);
}

// ---- one local-move sweep, hash baseline vs flat kernel ---------------------
// Both run the identical single-node sweep (the seed's serial inner loop):
// scan every vertex, accumulate neighbour-community weights, move to the
// best-gain community. The hash variant is the pre-PR3 unordered_map kernel,
// kept verbatim as the comparison baseline; the flat variant is the
// ScatterAccumulator kernel serial.cpp/shared.cpp/dist_louvain.cpp now use.
// Their outputs are identical (the argmax predicate is iteration-order
// independent), so `moved` doubles as a cross-check.

struct SweepInput {
  graph::Csr csr;
  std::vector<Weight> k;           ///< weighted degree per vertex
  std::vector<Weight> a_init;      ///< initial community degrees (= k)
  Weight m{0};                     ///< total edge weight
};

SweepInput make_sweep_input(const gen::GeneratedGraph& g) {
  SweepInput in;
  in.csr = graph::from_edges(g.num_vertices, g.edges);
  const auto n = static_cast<std::size_t>(in.csr.num_vertices());
  in.k.resize(n);
  for (VertexId v = 0; v < in.csr.num_vertices(); ++v)
    in.k[static_cast<std::size_t>(v)] = in.csr.weighted_degree(v);
  in.a_init = in.k;
  in.m = in.csr.total_arc_weight() / 2;
  return in;
}

std::int64_t sweep_hash(const SweepInput& in, std::vector<CommunityId>& curr,
                        std::vector<Weight>& a) {
  const VertexId n = in.csr.num_vertices();
  const Weight m = in.m;
  std::unordered_map<CommunityId, Weight> nbr_weight;
  std::int64_t moved = 0;
  for (VertexId v = 0; v < n; ++v) {
    const CommunityId own = curr[static_cast<std::size_t>(v)];
    const Weight kv = in.k[static_cast<std::size_t>(v)];
    nbr_weight.clear();
    for (const auto& e : in.csr.neighbors(v)) {
      if (e.dst == v) continue;
      nbr_weight[curr[static_cast<std::size_t>(e.dst)]] += e.weight;
    }
    const auto own_it = nbr_weight.find(own);
    const Weight e_own = own_it == nbr_weight.end() ? 0.0 : own_it->second;
    const Weight a_own_less_v = a[static_cast<std::size_t>(own)] - kv;
    CommunityId best = own;
    Weight best_gain = 0;
    for (const auto& [target, e_target] : nbr_weight) {
      if (target == own) continue;
      const Weight gain =
          (e_target - e_own) / m -
          kv * (a[static_cast<std::size_t>(target)] - a_own_less_v) / (2 * m * m);
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best != own && target < best)) {
        best = target;
        best_gain = gain;
      }
    }
    if (best != own) {
      a[static_cast<std::size_t>(own)] -= kv;
      a[static_cast<std::size_t>(best)] += kv;
      curr[static_cast<std::size_t>(v)] = best;
      ++moved;
    }
  }
  return moved;
}

std::int64_t sweep_flat(const SweepInput& in, std::vector<CommunityId>& curr,
                        std::vector<Weight>& a) {
  const VertexId n = in.csr.num_vertices();
  const Weight m = in.m;
  util::ScatterAccumulator<Weight> nbr_weight;
  std::int64_t moved = 0;
  for (VertexId v = 0; v < n; ++v) {
    const CommunityId own = curr[static_cast<std::size_t>(v)];
    const Weight kv = in.k[static_cast<std::size_t>(v)];
    nbr_weight.reset(n);
    for (const auto& e : in.csr.neighbors(v)) {
      if (e.dst == v) continue;
      nbr_weight.add(curr[static_cast<std::size_t>(e.dst)], e.weight);
    }
    const Weight e_own = nbr_weight.get(own);
    const Weight a_own_less_v = a[static_cast<std::size_t>(own)] - kv;
    CommunityId best = own;
    Weight best_gain = 0;
    for (const auto target : nbr_weight.touched()) {
      if (target == own) continue;
      const Weight e_target = nbr_weight.get(target);
      const Weight gain =
          (e_target - e_own) / m -
          kv * (a[static_cast<std::size_t>(target)] - a_own_less_v) / (2 * m * m);
      if (gain > best_gain ||
          (gain == best_gain && gain > 0 && best != own && target < best)) {
        best = target;
        best_gain = gain;
      }
    }
    if (best != own) {
      a[static_cast<std::size_t>(own)] -= kv;
      a[static_cast<std::size_t>(best)] += kv;
      curr[static_cast<std::size_t>(v)] = best;
      ++moved;
    }
  }
  return moved;
}

/// The segmented/SIMD lanes of the same sweep (ISSUE 8): arcs grouped by
/// destination-community segment in first-touch order, argmax via
/// util::best_segment. Bitwise identical to sweep_flat by construction --
/// `moved` doubles as the cross-check.
std::int64_t sweep_segmented(const SweepInput& in, std::vector<CommunityId>& curr,
                             std::vector<Weight>& a, util::SweepLane lane) {
  const VertexId n = in.csr.num_vertices();
  const Weight m = in.m;
  util::SegmentedAccumulator<Weight> nbr_weight;
  std::int64_t moved = 0;
  for (VertexId v = 0; v < n; ++v) {
    const CommunityId own = curr[static_cast<std::size_t>(v)];
    const Weight kv = in.k[static_cast<std::size_t>(v)];
    nbr_weight.reset(static_cast<std::size_t>(n));
    for (const auto& e : in.csr.neighbors(v)) {
      if (e.dst == v) continue;
      nbr_weight.add(curr[static_cast<std::size_t>(e.dst)], e.weight);
    }
    const Weight e_own = nbr_weight.sum_of(own);
    const Weight a_own_less_v = a[static_cast<std::size_t>(own)] - kv;
    const auto pick = util::best_segment(
        lane, nbr_weight, nbr_weight.segment_of(own), e_own, a_own_less_v, kv,
        m, 1.0,
        [&](std::int64_t slot) { return a[static_cast<std::size_t>(slot)]; },
        [](std::int64_t slot) { return static_cast<CommunityId>(slot); });
    const CommunityId best =
        pick.segment >= 0
            ? nbr_weight.slots()[static_cast<std::size_t>(pick.segment)]
            : own;
    if (best != own) {
      a[static_cast<std::size_t>(own)] -= kv;
      a[static_cast<std::size_t>(best)] += kv;
      curr[static_cast<std::size_t>(v)] = best;
      ++moved;
    }
  }
  return moved;
}

/// Round-robin the kernels inside a single rep loop so every kernel samples
/// the same slice of host noise (on a shared vCPU, consecutive per-kernel rep
/// blocks can land in different steal/frequency windows and skew the ratios
/// by 30%+). Per-kernel minimum across reps, as in timed_sweep.
struct InterleavedKernel {
  std::int64_t (*sweep)(const SweepInput&, std::vector<CommunityId>&,
                        std::vector<Weight>&);
  double best_ns = 1e300;
  std::int64_t moved = 0;
};

void timed_sweep_interleaved(const SweepInput& in, int reps,
                             std::vector<InterleavedKernel>& kernels) {
  std::vector<CommunityId> curr(in.k.size());
  std::vector<Weight> a;
  for (int rep = 0; rep < reps; ++rep) {
    for (auto& k : kernels) {
      std::iota(curr.begin(), curr.end(), CommunityId{0});
      a = in.a_init;
      const auto t0 = std::chrono::steady_clock::now();
      k.moved = k.sweep(in, curr, a);
      const auto t1 = std::chrono::steady_clock::now();
      const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
      if (ns < k.best_ns) k.best_ns = ns;
    }
  }
}

template <typename Sweep>
std::int64_t timed_sweep(const SweepInput& in, Sweep&& sweep, int reps,
                         double& best_ns) {
  std::vector<CommunityId> curr(in.k.size());
  std::vector<Weight> a;
  std::int64_t moved = 0;
  best_ns = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    const auto t0 = std::chrono::steady_clock::now();
    moved = sweep(in, curr, a);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (ns < best_ns) best_ns = ns;
  }
  return moved;
}

void BM_CsrBuild(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  for (auto _ : state) {
    auto csr = graph::from_edges(g.num_vertices, g.edges);
    benchmark::DoNotOptimize(csr);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.edges.size()));
}
BENCHMARK(BM_CsrBuild)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_Modularity(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    benchmark::DoNotOptimize(louvain::modularity(csr, g.ground_truth));
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_Modularity)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SerialLouvain(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    auto result = louvain::louvain_serial(csr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_SerialLouvain)->Arg(1000)->Arg(4000);

void BM_SharedLouvain(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    auto result = louvain::louvain_shared(csr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_SharedLouvain)->Arg(1000)->Arg(4000);

void BM_Coarsen(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    auto coarse = louvain::coarsen(csr, g.ground_truth);
    benchmark::DoNotOptimize(coarse);
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_Coarsen)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GenLfr(benchmark::State& state) {
  gen::LfrParams p;
  p.num_vertices = state.range(0);
  p.avg_degree = 20;
  p.max_degree = 60;
  p.mu = 0.3;
  for (auto _ : state) {
    auto g = gen::lfr(p);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GenLfr)->Arg(1000)->Arg(4000);

void BM_GenSsca2(benchmark::State& state) {
  for (auto _ : state) {
    auto g = bench_graph(state.range(0));
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GenSsca2)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_LocalMoveSweepHash(benchmark::State& state) {
  const auto in = make_sweep_input(rmat_graph(static_cast<int>(state.range(0))));
  std::vector<CommunityId> curr(in.k.size());
  std::vector<Weight> a;
  for (auto _ : state) {
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    benchmark::DoNotOptimize(sweep_hash(in, curr, a));
  }
  state.SetItemsProcessed(state.iterations() * in.csr.num_arcs());
}
BENCHMARK(BM_LocalMoveSweepHash)->Arg(10)->Arg(12);

void BM_LocalMoveSweepFlat(benchmark::State& state) {
  const auto in = make_sweep_input(rmat_graph(static_cast<int>(state.range(0))));
  std::vector<CommunityId> curr(in.k.size());
  std::vector<Weight> a;
  for (auto _ : state) {
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    benchmark::DoNotOptimize(sweep_flat(in, curr, a));
  }
  state.SetItemsProcessed(state.iterations() * in.csr.num_arcs());
}
BENCHMARK(BM_LocalMoveSweepFlat)->Arg(10)->Arg(12);

void BM_LocalMoveSweepSegmented(benchmark::State& state) {
  const auto in = make_sweep_input(rmat_graph(static_cast<int>(state.range(0))));
  std::vector<CommunityId> curr(in.k.size());
  std::vector<Weight> a;
  for (auto _ : state) {
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    benchmark::DoNotOptimize(
        sweep_segmented(in, curr, a, util::SweepLane::kSegmented));
  }
  state.SetItemsProcessed(state.iterations() * in.csr.num_arcs());
}
BENCHMARK(BM_LocalMoveSweepSegmented)->Arg(10)->Arg(12);

void BM_LocalMoveSweepSimd(benchmark::State& state) {
  const auto in = make_sweep_input(rmat_graph(static_cast<int>(state.range(0))));
  std::vector<CommunityId> curr(in.k.size());
  std::vector<Weight> a;
  for (auto _ : state) {
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    benchmark::DoNotOptimize(sweep_segmented(in, curr, a, util::SweepLane::kSimd));
  }
  state.SetItemsProcessed(state.iterations() * in.csr.num_arcs());
}
BENCHMARK(BM_LocalMoveSweepSimd)->Arg(10)->Arg(12);

// ---- the BENCH_PR3/PR5 json emitters ----------------------------------------

/// Best-of-`reps` kernel timings shared by the PR3 and PR5 emitters.
struct KernelNumbers {
  double hash_ns{0};
  double flat_ns{0};
  double coarsen_ns{0};
  std::int64_t moved{0};
};

bool measure_kernels(const SweepInput& in, int reps, KernelNumbers& out) {
  const auto hash_moved = timed_sweep(in, sweep_hash, reps, out.hash_ns);
  const auto flat_moved = timed_sweep(in, sweep_flat, reps, out.flat_ns);
  if (hash_moved != flat_moved) {
    std::cerr << "micro_kernels: hash and flat sweeps diverged (" << hash_moved
              << " vs " << flat_moved << " moves)\n";
    return false;
  }
  out.moved = flat_moved;
  out.coarsen_ns = 1e300;
  {
    // Coarsen by the sweep's resulting assignment (compacted ids).
    std::vector<CommunityId> curr(in.k.size());
    std::vector<Weight> a;
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    sweep_flat(in, curr, a);
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      auto coarse = louvain::coarsen(in.csr, curr);
      benchmark::DoNotOptimize(coarse);
      const auto t1 = std::chrono::steady_clock::now();
      const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
      if (ns < out.coarsen_ns) out.coarsen_ns = ns;
    }
  }
  return true;
}

/// Emit the shared "graph"/"kernels"/"ratios" sections (identical layout in
/// BENCH_PR3.json and BENCH_PR5.json so check_bench_regression.py can compare
/// any pair of perf trails kernel-by-kernel).
void emit_kernel_sections(std::ostream& out, const SweepInput& in, int scale,
                          int reps, const KernelNumbers& k) {
  const auto arcs = static_cast<double>(in.csr.num_arcs());
  out << "  \"graph\": {\"kind\": \"rmat\", \"scale\": " << scale
      << ", \"edges_per_vertex\": 8, \"seed\": 42, \"vertices\": "
      << in.csr.num_vertices() << ", \"arcs\": " << in.csr.num_arcs() << "},\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"kernels\": {\n"
      << "    \"local_move_hash\": {\"ns_per_op\": " << k.hash_ns
      << ", \"ns_per_arc\": " << k.hash_ns / arcs << ", \"moved\": " << k.moved
      << "},\n"
      << "    \"local_move_flat\": {\"ns_per_op\": " << k.flat_ns
      << ", \"ns_per_arc\": " << k.flat_ns / arcs << ", \"moved\": " << k.moved
      << "},\n"
      << "    \"coarsen_flat\": {\"ns_per_op\": " << k.coarsen_ns
      << ", \"ns_per_arc\": " << k.coarsen_ns / arcs << "}\n"
      << "  },\n"
      << "  \"ratios\": {\"local_move_hash_over_flat\": " << k.hash_ns / k.flat_ns
      << "},\n";
}

int run_pr3(const std::string& json_path, int scale, int reps, int dist_scale) {
  const auto g = rmat_graph(scale);
  const auto in = make_sweep_input(g);
  const auto arcs = static_cast<double>(in.csr.num_arcs());

  KernelNumbers kn;
  if (!measure_kernels(in, reps, kn)) return 1;

  // Distributed sweep breakdown (the telemetry split behind the paper's
  // Section V-A analysis), from a default-config run at a smaller scale.
  const auto gd = rmat_graph(dist_scale);
  const auto csrd = graph::from_edges(gd.num_vertices, gd.edges);
  core::TimeBreakdown breakdown;
  double dist_seconds = 0;
  comm::run(4, [&](comm::Comm& comm) {
    auto dist = graph::DistGraph::from_replicated(comm, csrd);
    core::DistConfig cfg;
    auto result = core::dist_louvain(comm, std::move(dist), cfg);
    if (comm.is_root()) {
      breakdown = result.breakdown;
      dist_seconds = result.seconds;
    }
  });

  std::ofstream out(json_path, std::ios::trunc);
  if (!out) {
    std::cerr << "micro_kernels: cannot open " << json_path << " for writing\n";
    return 1;
  }
  out.precision(17);
  out << "{\n"
      << "  \"bench\": \"micro_kernels.pr3\",\n";
  emit_kernel_sections(out, in, scale, reps, kn);
  out << "  \"dist_breakdown\": {\"ranks\": 4, \"scale\": " << dist_scale
      << ", \"seconds\": " << dist_seconds
      << ", \"ghost_exchange\": " << breakdown.ghost_exchange
      << ", \"community_info\": " << breakdown.community_info
      << ", \"compute\": " << breakdown.compute
      << ", \"delta_exchange\": " << breakdown.delta_exchange
      << ", \"allreduce\": " << breakdown.allreduce
      << ", \"rebuild\": " << breakdown.rebuild << "}\n"
      << "}\n";
  std::cout << "local_move_hash: " << kn.hash_ns / arcs << " ns/arc\n"
            << "local_move_flat: " << kn.flat_ns / arcs << " ns/arc\n"
            << "speedup:         " << kn.hash_ns / kn.flat_ns << "x\n"
            << "wrote " << json_path << '\n';
  return 0;
}

// ---- the BENCH_PR5.json emitter (overlap on/off ablation, ISSUE 5) ----------

/// One distributed run with the given overlap mode; returns root's result.
/// `delay_ms > 0` runs on a simulated-latency transport: every message's
/// visibility is pushed back by that much wall time via the deterministic
/// fault injector -- the in-process stand-in for wire latency (the transport
/// itself delivers at memcpy speed, so with zero delay the only hideable
/// latency is scheduler skew).
core::DistResult dist_run(const graph::Csr& csr, int ranks,
                          core::OverlapMode mode, double delay_ms) {
  core::DistResult root_result;
  comm::RunOptions options;
  if (delay_ms > 0) {
    options.faults = std::make_shared<comm::FaultInjector>(
        comm::FaultPlan().with_seed(5).delay(1.0, delay_ms));
  }
  comm::run(ranks, [&](comm::Comm& comm) {
    auto dist = graph::DistGraph::from_replicated(comm, csr);
    core::DistConfig cfg;
    cfg.overlap = mode;
    auto result = core::dist_louvain(comm, std::move(dist), cfg);
    if (comm.is_root()) root_result = std::move(result);
  }, options);
  return root_result;
}

double hidden_fraction_of(const core::DistResult& on) {
  const double wall = on.breakdown.ghost_exchange + on.breakdown.delta_exchange;
  const double total = wall + on.breakdown.comm_hidden;
  return total > 0 ? on.breakdown.comm_hidden / total : 0.0;
}

/// Best-of-`reps` distributed run. Overlap-off reps are ranked by wall time
/// (the usual min-time estimator). Overlap-on reps are ranked by hidden
/// fraction: the schedule itself is deterministic, but on a timeshared
/// machine a rep's measured overlap collapses whenever the scheduler parks a
/// rank between an exchange's launch and its wait, so max-of-N reports the
/// least-perturbed measurement -- the same reasoning that makes min-time the
/// right timing estimator.
core::DistResult best_dist_run(const graph::Csr& csr, int ranks,
                               core::OverlapMode mode, double delay_ms,
                               int reps) {
  core::DistResult best;
  for (int rep = 0; rep < reps; ++rep) {
    auto r = dist_run(csr, ranks, mode, delay_ms);
    const bool better = mode == core::OverlapMode::kOn
                            ? hidden_fraction_of(r) > hidden_fraction_of(best)
                            : r.seconds < best.seconds;
    if (rep == 0 || better) best = std::move(r);
  }
  return best;
}

void emit_breakdown(std::ostream& out, const char* key,
                    const core::DistResult& r) {
  const auto& b = r.breakdown;
  out << "    \"" << key << "\": {\"seconds\": " << r.seconds
      << ", \"ghost_exchange\": " << b.ghost_exchange
      << ", \"community_info\": " << b.community_info
      << ", \"compute\": " << b.compute
      << ", \"delta_exchange\": " << b.delta_exchange
      << ", \"allreduce\": " << b.allreduce
      << ", \"rebuild\": " << b.rebuild
      << ", \"comm_hidden\": " << b.comm_hidden
      << ", \"modularity\": " << r.modularity
      << ", \"communities\": " << r.num_communities << "}";
}

int run_pr5(const std::string& json_path, int scale, int reps, int dist_scale,
            int ranks, double delay_ms) {
  const auto g = rmat_graph(scale);
  const auto in = make_sweep_input(g);

  KernelNumbers kn;
  if (!measure_kernels(in, reps, kn)) return 1;

  // Overlap ablation: the same distributed run with the blocking schedule
  // (overlap off) and the interior-first schedule (overlap on), each on the
  // raw transport (zero latency) AND with `delay_ms` of simulated wire
  // latency per message. Results must be bitwise identical across all four
  // configurations -- the knob only moves where the rank blocks and the
  // delay injector preserves FIFO -- so any divergence fails the bench.
  // Off timings are best-of-`reps` by wall time; on timings best-of-`reps`
  // by hidden fraction (see best_dist_run).
  const auto gd = rmat_graph(dist_scale);
  const auto csrd = graph::from_edges(gd.num_vertices, gd.edges);
  const auto off0 = best_dist_run(csrd, ranks, core::OverlapMode::kOff, 0, reps);
  const auto on0 = best_dist_run(csrd, ranks, core::OverlapMode::kOn, 0, reps);
  const auto off = best_dist_run(csrd, ranks, core::OverlapMode::kOff, delay_ms, reps);
  const auto on = best_dist_run(csrd, ranks, core::OverlapMode::kOn, delay_ms, reps);
  for (const auto* r : {&on0, &off, &on}) {
    if (off0.community != r->community || off0.modularity != r->modularity) {
      std::cerr << "micro_kernels: overlap ablation runs diverged (Q "
                << off0.modularity << " vs " << r->modularity << ")\n";
      return 1;
    }
  }

  // Fraction of the total exchange latency (blocked wall + hidden) the
  // interior-first schedule hid behind compute. `comm_hidden` is latency that
  // elapsed while the rank was sweeping interior batches; the ghost/delta
  // timers keep only the blocked remainder.
  const double exchange_wall = on.breakdown.ghost_exchange + on.breakdown.delta_exchange;
  const double hidden_fraction = hidden_fraction_of(on);

  std::ofstream out(json_path, std::ios::trunc);
  if (!out) {
    std::cerr << "micro_kernels: cannot open " << json_path << " for writing\n";
    return 1;
  }
  out.precision(17);
  out << "{\n"
      << "  \"bench\": \"micro_kernels.pr5\",\n";
  emit_kernel_sections(out, in, scale, reps, kn);
  out << "  \"overlap_ablation\": {\n"
      << "    \"ranks\": " << ranks << ", \"scale\": " << dist_scale
      << ", \"reps\": " << reps << ", \"delay_ms\": " << delay_ms << ",\n";
  emit_breakdown(out, "off", off);
  out << ",\n";
  emit_breakdown(out, "on", on);
  out << ",\n";
  emit_breakdown(out, "off_zero_latency", off0);
  out << ",\n";
  emit_breakdown(out, "on_zero_latency", on0);
  out << ",\n"
      << "    \"identical\": true,\n"
      << "    \"comm_hidden\": " << on.breakdown.comm_hidden << ",\n"
      << "    \"exchange_wall\": " << exchange_wall << ",\n"
      << "    \"hidden_fraction\": " << hidden_fraction << ",\n"
      << "    \"zero_latency_hidden_fraction\": " << hidden_fraction_of(on0) << "\n"
      << "  }\n"
      << "}\n";
  const auto& ob = off.breakdown;
  std::cout << "delay " << delay_ms << " ms/message:\n"
            << "  overlap off: " << off.seconds << " s (exchange "
            << ob.ghost_exchange + ob.delta_exchange << " s)\n"
            << "  overlap on:  " << on.seconds << " s (exchange blocked "
            << exchange_wall << " s, hidden " << on.breakdown.comm_hidden
            << " s)\n"
            << "  hidden fraction: " << hidden_fraction << '\n'
            << "zero latency: off " << off0.seconds << " s, on " << on0.seconds
            << " s, hidden fraction " << hidden_fraction_of(on0) << '\n'
            << "wrote " << json_path << '\n';
  return 0;
}

// ---- the BENCH_PR8.json emitter (sweep lanes + overlap cost model) ----------

/// Minimum-wall distributed run: the usual best-of-N timing estimator. The
/// pr8 section compares WALLS across modes, so every mode is ranked the same
/// way (unlike pr5, which ranks overlap-on reps by hidden fraction).
core::DistResult min_wall_dist_run(const graph::Csr& csr, int ranks,
                                   core::OverlapMode mode, double delay_ms,
                                   int reps) {
  core::DistResult best;
  for (int rep = 0; rep < reps; ++rep) {
    auto r = dist_run(csr, ranks, mode, delay_ms);
    if (rep == 0 || r.seconds < best.seconds) best = std::move(r);
  }
  return best;
}

/// One delay point of the overlap_auto section: the same run forced off,
/// forced on, and under the cost model.
struct AutoPoint {
  core::DistResult off;
  core::DistResult on;
  core::DistResult automatic;
};

void emit_auto_point(std::ostream& out, const char* key, const AutoPoint& p) {
  const auto& t = p.automatic.overlap;
  out << "    \"" << key << "\": {\n"
      << "      \"off_seconds\": " << p.off.seconds
      << ", \"on_seconds\": " << p.on.seconds
      << ", \"auto_seconds\": " << p.automatic.seconds << ",\n"
      << "      \"auto_decision\": \"" << t.decision << "\""
      << ", \"auto_decided\": " << (t.decided ? "true" : "false")
      << ", \"auto_predicted_hidden_s\": " << t.predicted_hidden_s
      << ", \"auto_measured_latency_s\": " << t.measured_latency_s
      << ", \"auto_probe_iterations_off\": " << t.probe_iterations_off
      << ", \"auto_probe_iterations_on\": " << t.probe_iterations_on
      << ", \"auto_phases_engaged\": " << t.phases_engaged
      << ", \"auto_phases_declined\": " << t.phases_declined << "\n"
      << "    }";
}

int run_pr8(const std::string& json_path, int scale, int reps, int dist_scale,
            int ranks, double delay_ms) {
  const auto g = rmat_graph(scale);
  const auto in = make_sweep_input(g);
  const auto arcs = static_cast<double>(in.csr.num_arcs());

  // All four sweep kernels interleaved in one rep loop: the flat gather
  // baseline and the lane kernels sample the same host-noise window, so the
  // reported ratios reflect the kernels, not vCPU steal drift between rep
  // blocks. Same sweep, same moves -- any divergence is a lane bug.
  std::vector<InterleavedKernel> iks(4);
  iks[0].sweep = sweep_hash;
  iks[1].sweep = sweep_flat;
  iks[2].sweep = [](const SweepInput& i, std::vector<CommunityId>& c,
                    std::vector<Weight>& a) {
    return sweep_segmented(i, c, a, util::SweepLane::kSegmented);
  };
  iks[3].sweep = [](const SweepInput& i, std::vector<CommunityId>& c,
                    std::vector<Weight>& a) {
    return sweep_segmented(i, c, a, util::SweepLane::kSimd);
  };
  timed_sweep_interleaved(in, reps, iks);

  KernelNumbers kn;
  kn.hash_ns = iks[0].best_ns;
  kn.flat_ns = iks[1].best_ns;
  kn.moved = iks[1].moved;
  const double segmented_ns = iks[2].best_ns;
  const double simd_ns = iks[3].best_ns;
  const auto segmented_moved = iks[2].moved;
  const auto simd_moved = iks[3].moved;
  if (iks[0].moved != kn.moved || segmented_moved != kn.moved ||
      simd_moved != kn.moved) {
    std::cerr << "micro_kernels: sweep lanes diverged (hash " << iks[0].moved
              << ", flat " << kn.moved << ", segmented " << segmented_moved
              << ", simd " << simd_moved << " moves)\n";
    return 1;
  }
  const double best_lane_ns = std::min(segmented_ns, simd_ns);
  {
    // Coarsen by the sweep's resulting assignment (compacted ids).
    std::vector<CommunityId> curr(in.k.size());
    std::vector<Weight> a;
    std::iota(curr.begin(), curr.end(), CommunityId{0});
    a = in.a_init;
    sweep_flat(in, curr, a);
    kn.coarsen_ns = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      auto coarse = louvain::coarsen(in.csr, curr);
      benchmark::DoNotOptimize(coarse);
      const auto t1 = std::chrono::steady_clock::now();
      const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
      if (ns < kn.coarsen_ns) kn.coarsen_ns = ns;
    }
  }

  // The overlap cost model end to end: off / on / auto at zero simulated
  // latency and at `delay_ms` per message. All six runs must agree bitwise
  // (the knob only moves the blocking waits); auto's wall is recorded for
  // the within-tolerance-of-min(on, off) acceptance bar, and its decision +
  // model inputs land in the trail (the same fields the v4 manifest
  // carries).
  const auto gd = rmat_graph(dist_scale);
  const auto csrd = graph::from_edges(gd.num_vertices, gd.edges);
  AutoPoint zero;
  zero.off = min_wall_dist_run(csrd, ranks, core::OverlapMode::kOff, 0, reps);
  zero.on = min_wall_dist_run(csrd, ranks, core::OverlapMode::kOn, 0, reps);
  zero.automatic = min_wall_dist_run(csrd, ranks, core::OverlapMode::kAuto, 0, reps);
  AutoPoint delayed;
  delayed.off = min_wall_dist_run(csrd, ranks, core::OverlapMode::kOff, delay_ms, reps);
  delayed.on = min_wall_dist_run(csrd, ranks, core::OverlapMode::kOn, delay_ms, reps);
  delayed.automatic =
      min_wall_dist_run(csrd, ranks, core::OverlapMode::kAuto, delay_ms, reps);
  for (const auto* r : {&zero.on, &zero.automatic, &delayed.off, &delayed.on,
                        &delayed.automatic}) {
    if (zero.off.community != r->community || zero.off.modularity != r->modularity) {
      std::cerr << "micro_kernels: overlap mode runs diverged (Q "
                << zero.off.modularity << " vs " << r->modularity << ")\n";
      return 1;
    }
  }

  std::ofstream out(json_path, std::ios::trunc);
  if (!out) {
    std::cerr << "micro_kernels: cannot open " << json_path << " for writing\n";
    return 1;
  }
  out.precision(17);
  out << "{\n"
      << "  \"bench\": \"micro_kernels.pr8\",\n"
      << "  \"graph\": {\"kind\": \"rmat\", \"scale\": " << scale
      << ", \"edges_per_vertex\": 8, \"seed\": 42, \"vertices\": "
      << in.csr.num_vertices() << ", \"arcs\": " << in.csr.num_arcs() << "},\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"kernels\": {\n"
      << "    \"local_move_hash\": {\"ns_per_op\": " << kn.hash_ns
      << ", \"ns_per_arc\": " << kn.hash_ns / arcs << ", \"moved\": " << kn.moved
      << "},\n"
      << "    \"local_move_flat\": {\"ns_per_op\": " << kn.flat_ns
      << ", \"ns_per_arc\": " << kn.flat_ns / arcs << ", \"moved\": " << kn.moved
      << "},\n"
      << "    \"local_move_segmented\": {\"ns_per_op\": " << segmented_ns
      << ", \"ns_per_arc\": " << segmented_ns / arcs
      << ", \"moved\": " << segmented_moved << "},\n"
      << "    \"local_move_simd\": {\"ns_per_op\": " << simd_ns
      << ", \"ns_per_arc\": " << simd_ns / arcs << ", \"moved\": " << simd_moved
      << "},\n"
      << "    \"coarsen_flat\": {\"ns_per_op\": " << kn.coarsen_ns
      << ", \"ns_per_arc\": " << kn.coarsen_ns / arcs << "}\n"
      << "  },\n"
      << "  \"ratios\": {\"local_move_hash_over_flat\": " << kn.hash_ns / kn.flat_ns
      << ", \"flat_over_segmented\": " << kn.flat_ns / segmented_ns
      << ", \"flat_over_simd\": " << kn.flat_ns / simd_ns
      << ", \"flat_over_best_lane\": " << kn.flat_ns / best_lane_ns << "},\n"
      << "  \"overlap_auto\": {\n"
      << "    \"ranks\": " << ranks << ", \"scale\": " << dist_scale
      << ", \"reps\": " << reps << ", \"delay_ms\": " << delay_ms << ",\n"
      << "    \"identical\": true,\n";
  emit_auto_point(out, "zero_latency", zero);
  out << ",\n";
  emit_auto_point(out, "delayed", delayed);
  out << "\n  }\n}\n";

  std::cout << "local_move_flat:      " << kn.flat_ns / arcs << " ns/arc\n"
            << "local_move_segmented: " << segmented_ns / arcs << " ns/arc ("
            << kn.flat_ns / segmented_ns << "x over flat)\n"
            << "local_move_simd:      " << simd_ns / arcs << " ns/arc ("
            << kn.flat_ns / simd_ns << "x over flat)\n"
            << "overlap auto, zero latency:  off " << zero.off.seconds << " s, on "
            << zero.on.seconds << " s, auto " << zero.automatic.seconds << " s ("
            << zero.automatic.overlap.decision << ")\n"
            << "overlap auto, " << delay_ms << " ms delay: off "
            << delayed.off.seconds << " s, on " << delayed.on.seconds
            << " s, auto " << delayed.automatic.seconds << " s ("
            << delayed.automatic.overlap.decision << ")\n"
            << "wrote " << json_path << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string pr3_path;
  std::string pr5_path;
  std::string pr8_path;
  int scale = 16;
  int reps = 5;
  int dist_scale = 12;
  int pr5_dist_scale = 16;
  int ranks = 8;
  double delay_ms = 1.0;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pr3_json=", 0) == 0) {
      pr3_path = arg.substr(std::strlen("--pr3_json="));
    } else if (arg.rfind("--pr5_json=", 0) == 0) {
      pr5_path = arg.substr(std::strlen("--pr5_json="));
    } else if (arg.rfind("--pr8_json=", 0) == 0) {
      pr8_path = arg.substr(std::strlen("--pr8_json="));
    } else if (arg.rfind("--pr3_scale=", 0) == 0) {
      scale = std::stoi(arg.substr(std::strlen("--pr3_scale=")));
    } else if (arg.rfind("--pr5_scale=", 0) == 0) {
      scale = std::stoi(arg.substr(std::strlen("--pr5_scale=")));
    } else if (arg.rfind("--pr8_scale=", 0) == 0) {
      scale = std::stoi(arg.substr(std::strlen("--pr8_scale=")));
    } else if (arg.rfind("--pr3_reps=", 0) == 0) {
      reps = std::stoi(arg.substr(std::strlen("--pr3_reps=")));
    } else if (arg.rfind("--pr5_reps=", 0) == 0) {
      reps = std::stoi(arg.substr(std::strlen("--pr5_reps=")));
    } else if (arg.rfind("--pr8_reps=", 0) == 0) {
      reps = std::stoi(arg.substr(std::strlen("--pr8_reps=")));
    } else if (arg.rfind("--pr3_dist_scale=", 0) == 0) {
      dist_scale = std::stoi(arg.substr(std::strlen("--pr3_dist_scale=")));
    } else if (arg.rfind("--pr5_dist_scale=", 0) == 0) {
      pr5_dist_scale = std::stoi(arg.substr(std::strlen("--pr5_dist_scale=")));
    } else if (arg.rfind("--pr8_dist_scale=", 0) == 0) {
      pr5_dist_scale = std::stoi(arg.substr(std::strlen("--pr8_dist_scale=")));
    } else if (arg.rfind("--pr5_ranks=", 0) == 0) {
      ranks = std::stoi(arg.substr(std::strlen("--pr5_ranks=")));
    } else if (arg.rfind("--pr8_ranks=", 0) == 0) {
      ranks = std::stoi(arg.substr(std::strlen("--pr8_ranks=")));
    } else if (arg.rfind("--pr5_delay_ms=", 0) == 0) {
      delay_ms = std::stod(arg.substr(std::strlen("--pr5_delay_ms=")));
    } else if (arg.rfind("--pr8_delay_ms=", 0) == 0) {
      delay_ms = std::stod(arg.substr(std::strlen("--pr8_delay_ms=")));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!pr3_path.empty()) return run_pr3(pr3_path, scale, reps, dist_scale);
  if (!pr5_path.empty())
    return run_pr5(pr5_path, scale, reps, pr5_dist_scale, ranks, delay_ms);
  if (!pr8_path.empty())
    return run_pr8(pr8_path, scale, reps, pr5_dist_scale, ranks, delay_ms);

  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
