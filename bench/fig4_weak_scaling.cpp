// Table V + Fig. 4: weak scaling on GTgraph-SSCA#2-style inputs -- graph
// size grows proportionally with the rank count so work per rank stays
// fixed; the paper observes near-constant execution time and identical
// convergence behaviour (same phase/iteration counts) at every size, with
// modularity 0.9999+.
//
// Simulator caveat: all ranks share one physical core here, so raw
// wall-clock grows with total work by construction. The per-rank share
// (wall-clock / ranks) is the 1-core analogue of the paper's parallel time
// and is the flat series to look at; the identical-convergence property is
// checked directly.
#include <iostream>

#include "bench/harness.hpp"
#include "core/dist_louvain.hpp"
#include "gen/ssca2.hpp"
#include "graph/csr.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const auto ranks = cli.get_int_list("ranks", {1, 2, 4, 8}, "rank counts (graph grows with p)");
  const VertexId per_rank = cli.get_int("per-rank", 1500, "vertices per rank");
  const VertexId max_clique = cli.get_int("max-clique", 30, "SSCA#2 clique cap");
  if (!cli.finish()) return 1;

  bench::banner("Table V + Fig. 4: weak scaling on SSCA#2 graphs (Baseline)",
                "GTgraph SSCA#2, 5M-150M vertices, 1-512 processes, maxClique=100",
                "SSCA#2-style generator, " + std::to_string(per_rank) +
                    " vertices/rank, maxClique=" + std::to_string(max_clique));

  util::TextTable table({"Name", "#Vertices", "#Edges", "Modularity", "#Processes",
                         "wall (s)", "wall/p (s)", "phases", "iterations"});
  int row_id = 1;
  for (const auto p : ranks) {
    gen::Ssca2Params params;
    params.num_vertices = per_rank * p;
    params.max_clique_size = max_clique;
    params.inter_clique_prob = 0.0005;  // deliberately low inter-clique density
    params.seed = 1234;                // same structure class at every size
    const auto generated = gen::ssca2(params);
    const auto csr = graph::from_edges(generated.num_vertices, generated.edges);

    util::WallTimer timer;
    const auto result = core::dist_louvain_inprocess(static_cast<int>(p), csr);
    const double wall = timer.seconds();

    table.add_row({"Graph#" + std::to_string(row_id++),
                   util::TextTable::fmt(csr.num_vertices()),
                   util::TextTable::fmt(csr.num_arcs() / 2),
                   util::TextTable::fmt(result.modularity, 6),
                   util::TextTable::fmt(p),
                   util::TextTable::fmt(wall, 3),
                   util::TextTable::fmt(wall / static_cast<double>(p), 3),
                   util::TextTable::fmt(result.phases),
                   util::TextTable::fmt(result.total_iterations)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: near-constant execution time; identical convergence"
               " criteria across sizes)\n";
  return 0;
}
