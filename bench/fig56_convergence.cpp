// Figs. 5a/5b and 6a/6b: convergence characteristics -- modularity growth
// per phase and iterations per phase -- for nlpkkt240 (Fig. 5; paper finds
// ET(0.25) better than ET(0.75): the aggressive variant needs 2.6x the
// phases) and web-cc12-PayLevelDomain (Fig. 6; the converse, ET(0.75)
// better). ETC variants track each other closely in both.
#include <fstream>
#include <iostream>

#include "bench/harness.hpp"
#include "core/dist_louvain.hpp"
#include "core/metrics.hpp"
#include "util/cli.hpp"

namespace {

/// Dump per-iteration series as CSV (one row per (graph, variant, phase,
/// iteration)) for external plotting of the figures.
void write_csv(const std::string& path, const std::string& graph,
               const std::vector<std::string>& labels,
               const std::vector<dlouvain::core::DistResult>& results, bool append) {
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path);
  if (!append)
    out << "graph,variant,phase,iteration,modularity,active,moved,inactive\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const auto& phase : results[i].phase_telemetry) {
      for (const auto& it : phase.iteration_detail) {
        out << graph << ',' << labels[i] << ',' << phase.phase << ',' << it.iteration
            << ',' << it.modularity << ',' << it.active_vertices << ','
            << it.moved_vertices << ',' << it.inactive_vertices << '\n';
      }
    }
  }
}

/// Accumulate one run manifest (docs/OBSERVABILITY.md) into the JSON array
/// written by --metrics-out, tagged with its graph and variant label.
void append_manifest(std::string& out, const std::string& graph,
                     const std::string& label,
                     const dlouvain::core::DistResult& result) {
  if (out.empty())
    out += "[";
  else
    out += ",";
  out += "\n{\"graph\":\"" + dlouvain::core::json_escape(graph) +
         "\",\"variant\":\"" + dlouvain::core::json_escape(label) +
         "\",\"manifest\":" + dlouvain::core::dist_result_to_json(result) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5, "surrogate size multiplier");
  const int ranks = static_cast<int>(cli.get_int("ranks", 8, "in-process ranks"));
  const auto csv = cli.get_string("csv", "", "write per-iteration series to CSV");
  const auto metrics_out =
      cli.get_string("metrics-out", "", "write a JSON array of run manifests here");
  if (!cli.finish()) return 1;
  std::string manifests;

  bench::banner("Figs. 5-6: convergence characteristics (modularity & iterations per phase)",
                "nlpkkt240 and web-cc12-PayLevelDomain on 64 processes",
                "surrogates at scale " + util::TextTable::fmt(scale, 2) + ", " +
                    std::to_string(ranks) + " ranks");

  const std::vector<core::DistConfig> variants = {
      core::DistConfig::baseline(), core::DistConfig::et(0.25), core::DistConfig::et(0.75),
      core::DistConfig::etc(0.25), core::DistConfig::etc(0.75)};

  for (const std::string name : {"nlpkkt240", "web-cc12-PayLevelDomain"}) {
    const auto csr = bench::surrogate_csr(name, scale);
    std::cout << (name == "nlpkkt240" ? "Fig. 5" : "Fig. 6") << ": " << name << " ("
              << csr.num_vertices() << " vertices, " << csr.num_arcs() / 2 << " edges)\n";

    // Collect runs first so both sub-figures come from the same executions.
    std::vector<core::DistResult> results;
    results.reserve(variants.size());
    for (const auto& cfg : variants) {
      results.push_back(core::dist_louvain_inprocess(ranks, csr, cfg));
      if (!metrics_out.empty())
        append_manifest(manifests, name, bench::label_of(cfg), results.back());
    }

    if (!csv.empty()) {
      std::vector<std::string> labels;
      for (const auto& cfg : variants) labels.push_back(bench::label_of(cfg));
      write_csv(csv, name, labels, results, /*append=*/name != "nlpkkt240");
      std::cout << "(per-iteration series appended to " << csv << ")\n";
    }

    std::size_t max_phases = 0;
    for (const auto& r : results) max_phases = std::max(max_phases, r.phase_telemetry.size());

    std::cout << "(a) modularity after each phase:\n";
    std::vector<std::string> headers{"phase"};
    for (const auto& cfg : variants) headers.push_back(bench::label_of(cfg));
    util::TextTable mod_table(headers);
    for (std::size_t ph = 0; ph < max_phases; ++ph) {
      std::vector<std::string> row{util::TextTable::fmt(static_cast<std::int64_t>(ph))};
      for (const auto& r : results)
        row.push_back(ph < r.phase_telemetry.size()
                          ? util::TextTable::fmt(r.phase_telemetry[ph].modularity_after, 4)
                          : "-");
      mod_table.add_row(std::move(row));
    }
    mod_table.print(std::cout);

    std::cout << "(b) iterations per phase:\n";
    util::TextTable it_table(headers);
    for (std::size_t ph = 0; ph < max_phases; ++ph) {
      std::vector<std::string> row{util::TextTable::fmt(static_cast<std::int64_t>(ph))};
      for (const auto& r : results)
        row.push_back(ph < r.phase_telemetry.size()
                          ? util::TextTable::fmt(
                                static_cast<std::int64_t>(r.phase_telemetry[ph].iterations))
                          : "-");
      it_table.add_row(std::move(row));
    }
    it_table.print(std::cout);

    util::TextTable summary({"variant", "phases", "total iterations", "time (s)",
                             "modularity"});
    for (std::size_t i = 0; i < variants.size(); ++i) {
      summary.add_row({bench::label_of(variants[i]),
                       util::TextTable::fmt(results[i].phases),
                       util::TextTable::fmt(results[i].total_iterations),
                       util::TextTable::fmt(results[i].seconds, 3),
                       util::TextTable::fmt(results[i].modularity, 4)});
    }
    summary.print(std::cout);
    std::cout << '\n';
  }

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + metrics_out);
    out << manifests << "\n]\n";
    std::cout << "(run manifests written to " << metrics_out << ")\n";
  }
  return 0;
}
