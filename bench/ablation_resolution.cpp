// Ablation: the resolution parameter gamma (Reichardt-Bornholdt), the
// standard mitigation for the resolution limit the paper's introduction
// discusses (Fortunato & Barthelemy [12]; Traag et al. [30] for
// resolution-limit-free variants). Sweeping gamma on a clique-structured
// graph shows the community count growing monotonically with gamma while
// classical modularity (gamma = 1) of the produced partition peaks at
// gamma = 1 -- the expected signature.
#include <iostream>

#include "bench/harness.hpp"
#include "gen/ssca2.hpp"
#include "graph/csr.hpp"
#include "louvain/modularity.hpp"
#include "louvain/serial.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const VertexId n = cli.get_int("n", 3000, "graph vertices");
  const auto gammas = cli.get_double_list("gamma", {0.1, 0.3, 1.0, 3.0, 10.0},
                                          "resolution values");
  if (!cli.finish()) return 1;

  bench::banner("Ablation: resolution parameter gamma",
                "resolution limit discussion (paper Section I, refs [12], [30])",
                "SSCA#2 cliques, serial Louvain, gamma sweep");

  gen::Ssca2Params params;
  params.num_vertices = n;
  params.max_clique_size = 40;
  params.inter_clique_prob = 0.02;
  const auto generated = gen::ssca2(params);
  const auto g = graph::from_edges(generated.num_vertices, generated.edges);
  CommunityId planted = 0;
  for (const auto c : generated.ground_truth) planted = std::max(planted, c);
  ++planted;
  std::cout << "graph: " << g.num_vertices() << " vertices, " << g.num_arcs() / 2
            << " edges, " << planted << " planted cliques\n\n";

  util::TextTable table({"gamma", "communities", "Q_gamma", "Q_1 (classic)"});
  for (const double gamma : gammas) {
    louvain::LouvainConfig cfg;
    cfg.resolution = gamma;
    const auto result = louvain::louvain_serial(g, cfg);
    table.add_row({util::TextTable::fmt(gamma, 2),
                   util::TextTable::fmt(result.num_communities),
                   util::TextTable::fmt(result.modularity, 4),
                   util::TextTable::fmt(louvain::modularity(g, result.community), 4)});
  }
  table.print(std::cout);
  return 0;
}
