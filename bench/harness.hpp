// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation (see DESIGN.md section 4 for the index). Defaults are sized so
// the full suite completes in minutes on one core; every harness accepts
// --scale / --ranks style flags to grow toward the paper's configurations.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/dist_config.hpp"
#include "core/dist_louvain.hpp"
#include "gen/surrogate.hpp"
#include "graph/csr.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace dlouvain::bench {

/// The six variants of the paper's evaluation legend (Section V).
inline std::vector<core::DistConfig> paper_variants() {
  return {core::DistConfig::baseline(),       core::DistConfig::threshold_cycling(),
          core::DistConfig::et(0.25),         core::DistConfig::et(0.75),
          core::DistConfig::etc(0.25),        core::DistConfig::etc(0.75)};
}

inline std::string label_of(const core::DistConfig& cfg) {
  std::string label = core::variant_label(cfg.variant, cfg.base.et_alpha);
  if (cfg.add_threshold_cycling) label += "+TC";
  return label;
}

/// Build the CSR for a named surrogate at the given scale.
inline graph::Csr surrogate_csr(const std::string& name, double scale,
                                std::uint64_t seed = 42) {
  const auto generated = gen::surrogate(name, scale, seed);
  return graph::from_edges(generated.num_vertices, generated.edges);
}

/// Banner printed by every harness: what is being reproduced and how the
/// configuration differs from the paper's.
inline void banner(const std::string& experiment, const std::string& paper_setup,
                   const std::string& this_setup) {
  std::cout << "== " << experiment << " ==\n"
            << "paper setup: " << paper_setup << '\n'
            << "this run:    " << this_setup << '\n'
            << '\n';
}

}  // namespace dlouvain::bench
