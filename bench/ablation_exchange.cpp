// Ablation for the ghost exchange along both of its axes:
//  * topology -- sparse neighbourhood collective (the paper's planned MPI-3
//    upgrade, Section VI) vs dense all-to-all. Payload bytes are identical;
//    the sparse path sends O(sum of rank degrees) messages instead of
//    O(p^2) per exchange, which matters most on spatially local graphs
//    (banded meshes) where each rank borders only two others.
//  * wire format -- full mirror lists (dense) vs changed-entries-only
//    (delta) vs the per-destination crossover pick (auto; the default).
//    Results are bitwise identical in every mode; only bytes move.
#include <iostream>

#include "bench/harness.hpp"
#include "comm/world.hpp"
#include "core/dist_louvain.hpp"
#include "gen/simple.hpp"
#include "graph/csr.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const auto rank_list = cli.get_int_list("ranks", {4, 8, 16}, "rank counts");
  const double scale = cli.get_double("scale", 0.5, "surrogate size multiplier");
  if (!cli.finish()) return 1;

  bench::banner("Ablation: neighbourhood collectives vs dense all-to-all ghost exchange",
                "paper Section VI: 'we are considering neighborhood collective "
                "operations introduced in MPI-3'",
                "message counts for full Louvain runs, surrogates at scale " +
                    util::TextTable::fmt(scale, 2));

  util::TextTable table({"graph", "ranks", "avg rank degree", "msgs (sparse)",
                         "msgs (dense)", "reduction"});

  for (const std::string name : {"channel", "soc-friendster"}) {
    const auto csr = bench::surrogate_csr(name, scale);
    for (const auto p : rank_list) {
      double rank_degree = 0;
      comm::run(static_cast<int>(p), [&](comm::Comm& comm) {
        const auto dist = graph::DistGraph::from_replicated(comm, csr);
        const auto total = comm.allreduce_sum<std::int64_t>(
            static_cast<std::int64_t>(dist.neighbor_ranks().size()));
        if (comm.is_root()) rank_degree = static_cast<double>(total) / static_cast<double>(p);
      });

      auto traffic = [&](bool sparse) {
        core::DistConfig cfg;
        cfg.use_neighbor_exchange = sparse;
        std::int64_t messages = 0;
        comm::run(static_cast<int>(p), [&](comm::Comm& comm) {
          auto dist = graph::DistGraph::from_replicated(comm, csr);
          auto result = core::dist_louvain(comm, std::move(dist), cfg);
          if (comm.is_root()) messages = result.messages;
        });
        return messages;
      };
      const auto sparse = traffic(true);
      const auto dense = traffic(false);
      table.add_row({name, util::TextTable::fmt(p),
                     util::TextTable::fmt(rank_degree, 1),
                     util::TextTable::fmt(sparse), util::TextTable::fmt(dense),
                     util::TextTable::fmt(100.0 * (1.0 - static_cast<double>(sparse) /
                                                             static_cast<double>(dense)),
                                          1) +
                         "%"});
    }
  }
  table.print(std::cout);

  bench::banner("Ablation: ghost-update wire format (dense / delta / auto)",
                "changed-entries-only updates once most vertices stop moving",
                "total traffic for full Louvain runs, surrogates at scale " +
                    util::TextTable::fmt(scale, 2));

  util::TextTable wire({"graph", "ranks", "mode", "bytes", "vs dense", "modularity"});
  for (const std::string name : {"channel", "soc-friendster"}) {
    const auto csr = bench::surrogate_csr(name, scale);
    for (const auto p : rank_list) {
      std::int64_t dense_bytes = 0;
      double dense_mod = 0;
      for (const auto mode :
           {core::GhostExchangeMode::kDense, core::GhostExchangeMode::kDelta,
            core::GhostExchangeMode::kAuto}) {
        core::DistConfig cfg;
        cfg.ghost_exchange_mode = mode;
        std::int64_t bytes = 0;
        double modularity = 0;
        comm::run(static_cast<int>(p), [&](comm::Comm& comm) {
          auto dist = graph::DistGraph::from_replicated(comm, csr);
          auto result = core::dist_louvain(comm, std::move(dist), cfg);
          if (comm.is_root()) {
            bytes = result.bytes;
            modularity = result.modularity;
          }
        });
        if (mode == core::GhostExchangeMode::kDense) {
          dense_bytes = bytes;
          dense_mod = modularity;
        } else if (modularity != dense_mod) {
          std::cerr << "MODE MISMATCH: " << name << " p=" << p << " "
                    << core::exchange_mode_label(mode) << " modularity diverged\n";
          return 1;
        }
        wire.add_row({name, util::TextTable::fmt(p),
                      core::exchange_mode_label(mode),
                      util::TextTable::fmt(bytes),
                      util::TextTable::fmt(100.0 * static_cast<double>(bytes) /
                                               static_cast<double>(dense_bytes),
                                           1) +
                          "%",
                      util::TextTable::fmt(modularity, 6)});
      }
    }
  }
  wire.print(std::cout);
  return 0;
}
