// Ablation for the paper's Section VI future-work heuristic: distance-1
// coloring of the sweep. Colored sweeps guarantee that vertices deciding
// concurrently across ranks are mutually non-adjacent (no stale-neighbour
// decisions), at the price of one ghost/community refresh per color class
// per iteration. This harness compares convergence (iterations, phases),
// quality, and communication volume with and without coloring.
#include <iostream>

#include "bench/harness.hpp"
#include "comm/world.hpp"
#include "core/coloring.hpp"
#include "core/dist_louvain.hpp"
#include "graph/dist_graph.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5, "surrogate size multiplier");
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  if (!cli.finish()) return 1;

  bench::banner("Ablation: distance-1 colored sweeps (paper Section VI future work)",
                "'may lead to faster convergence' -- Grappolo's coloring heuristic",
                std::to_string(ranks) + " ranks, surrogates at scale " +
                    util::TextTable::fmt(scale, 2));

  util::TextTable table({"graph", "mode", "colors", "phases", "iterations",
                         "time (s)", "messages", "modularity"});

  for (const std::string name : {"channel", "com-orkut", "soc-friendster", "uk-2007"}) {
    const auto csr = bench::surrogate_csr(name, scale);

    // Report the color count once per graph.
    std::int64_t colors = 0;
    comm::run(ranks, [&](comm::Comm& comm) {
      const auto dist = graph::DistGraph::from_replicated(comm, csr);
      const auto coloring = core::distance1_coloring(comm, dist);
      if (comm.is_root()) colors = coloring.num_colors;
    });

    for (const bool colored : {false, true}) {
      core::DistConfig cfg;
      cfg.use_coloring = colored;
      util::WallTimer timer;
      const auto result = core::dist_louvain_inprocess(ranks, csr, cfg);
      table.add_row({name, colored ? "colored" : "plain",
                     colored ? util::TextTable::fmt(colors) : "-",
                     util::TextTable::fmt(result.phases),
                     util::TextTable::fmt(result.total_iterations),
                     util::TextTable::fmt(timer.seconds(), 3),
                     util::TextTable::fmt(result.messages),
                     util::TextTable::fmt(result.modularity, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\n(colored sweeps trade communication rounds for decisions that never"
               " act on stale neighbour state)\n";
  return 0;
}
