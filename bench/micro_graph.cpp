// Micro-benchmarks for the distributed graph substrate: DistGraph assembly
// (arc routing + CSR build + ghost discovery), partition owner lookups, and
// the binary I/O path.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "comm/world.hpp"
#include "gen/ssca2.hpp"
#include "graph/binary_io.hpp"
#include "graph/dist_graph.hpp"
#include "graph/partition.hpp"

namespace {

using namespace dlouvain;

gen::GeneratedGraph bench_graph(std::int64_t n) {
  gen::Ssca2Params p;
  p.num_vertices = n;
  p.max_clique_size = 25;
  p.inter_clique_prob = 0.01;
  return gen::ssca2(p);
}

void BM_DistGraphBuild(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto g = bench_graph(state.range(1));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    comm::run(p, [&](comm::Comm& comm) {
      auto dist = graph::DistGraph::from_replicated(comm, csr);
      benchmark::DoNotOptimize(dist);
    });
  }
  state.SetItemsProcessed(state.iterations() * csr.num_arcs());
}
BENCHMARK(BM_DistGraphBuild)->Args({2, 2000})->Args({4, 2000})->Args({8, 2000})->Args({4, 8000});

void BM_PartitionOwnerLookup(benchmark::State& state) {
  const auto part = graph::partition_even_vertices(1 << 20, static_cast<int>(state.range(0)));
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.owner(v));
    v = (v + 7919) & ((1 << 20) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartitionOwnerLookup)->Arg(16)->Arg(256)->Arg(4096);

void BM_BinaryWriteRead(benchmark::State& state) {
  const auto g = bench_graph(state.range(0));
  const auto path =
      (std::filesystem::temp_directory_path() / "dlel_bench.bin").string();
  for (auto _ : state) {
    graph::write_binary(path, g.num_vertices, g.edges);
    auto edges = graph::read_binary_slice(path, 0, static_cast<EdgeId>(g.edges.size()));
    benchmark::DoNotOptimize(edges);
  }
  std::filesystem::remove(path);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edges.size()) * 24);
}
BENCHMARK(BM_BinaryWriteRead)->Arg(2000)->Arg(8000);

void BM_GhostDiscoveryShare(benchmark::State& state) {
  // Fraction-of-build cost proxy: rebuild DistGraph on a banded graph where
  // ghost lists are short vs an LFR-ish one where they are long.
  const auto g = bench_graph(state.range(0));
  const auto csr = graph::from_edges(g.num_vertices, g.edges);
  for (auto _ : state) {
    comm::run(4, [&](comm::Comm& comm) {
      auto dist = graph::DistGraph::from_replicated(comm, csr);
      benchmark::DoNotOptimize(dist.ghosts().size());
    });
  }
}
BENCHMARK(BM_GhostDiscoveryShare)->Arg(2000)->Arg(8000);

}  // namespace

BENCHMARK_MAIN();
