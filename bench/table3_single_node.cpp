// Table III: distributed vs shared memory on one node for soc-friendster,
// thread counts 4..64. The paper's shape: the pure shared-memory code is
// ~2.3x faster at 32 cores, but the distributed code scales better with
// thread count (4x from 4->64 threads vs 2x for shared).
//
// On this 1-core host absolute scaling cannot appear (see EXPERIMENTS.md);
// the harness still exercises exactly the two code paths at every size and
// reports quality parity (the paper's "modularity difference under 1%").
#include <iostream>

#include "bench/harness.hpp"
#include "core/dist_louvain.hpp"
#include "louvain/shared.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.6, "surrogate size multiplier");
  const auto sizes = cli.get_int_list("threads", {4, 8, 16, 32, 64},
                                      "thread/rank counts to sweep");
  if (!cli.finish()) return 1;

  bench::banner("Table III: distributed vs shared memory on a single node (soc-friendster)",
                "one Cori Haswell node, 4-64 threads, 1.8B edges",
                "soc-friendster surrogate at scale " + util::TextTable::fmt(scale, 2) +
                    ", ranks-as-threads");

  const auto csr = bench::surrogate_csr("soc-friendster", scale);
  std::cout << "graph: " << csr.num_vertices() << " vertices, " << csr.num_arcs() / 2
            << " edges\n\n";

  util::TextTable table({"#Threads", "Distributed memory (sec.)", "Shared memory (sec.)",
                         "dist modularity", "shared modularity"});
  for (const auto size : sizes) {
    util::WallTimer dist_timer;
    const auto dist = core::dist_louvain_inprocess(static_cast<int>(size), csr);
    const double dist_seconds = dist_timer.seconds();

    util::WallTimer shared_timer;
    const auto shared = louvain::louvain_shared(csr, {}, static_cast<int>(size));
    const double shared_seconds = shared_timer.seconds();

    table.add_row({util::TextTable::fmt(size),
                   util::TextTable::fmt(dist_seconds, 3),
                   util::TextTable::fmt(shared_seconds, 3),
                   util::TextTable::fmt(dist.modularity, 4),
                   util::TextTable::fmt(shared.modularity, 4)});
  }
  table.print(std::cout);
  return 0;
}
