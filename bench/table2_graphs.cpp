// Table II: the test-graph roster with the modularity reported by the
// single-threaded shared-memory implementation (the paper's "as reported by
// Grappolo (using 1 thread)" column), against the paper's published values.
#include <iostream>

#include "bench/harness.hpp"
#include "gen/surrogate.hpp"
#include "louvain/shared.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "surrogate size multiplier");
  if (!cli.finish()) return 1;

  bench::banner("Table II: test graphs (ascending edge order) + Grappolo-1T modularity",
                "12 real-world graphs, 42.7M to 3.3B edges",
                "structure-matched surrogates at scale " + util::TextTable::fmt(scale, 2));

  util::TextTable table({"Graphs", "#Vertices", "#Edges", "Modularity",
                         "paper #V", "paper #E", "paper Mod", "structure"});
  for (const auto& info : gen::table2_catalog()) {
    const auto csr = bench::surrogate_csr(info.name, scale);
    const auto result = louvain::louvain_shared(csr, {}, /*num_threads=*/1);
    table.add_row({info.name,
                   util::TextTable::fmt(csr.num_vertices()),
                   util::TextTable::fmt(csr.num_arcs() / 2),
                   util::TextTable::fmt(result.modularity, 3),
                   util::TextTable::fmt(info.paper_vertices / 1e6, 1) + "M",
                   util::TextTable::fmt(info.paper_edges / 1e6, 1) + "M",
                   util::TextTable::fmt(info.paper_modularity, 3),
                   info.structure});
  }
  table.print(std::cout);
  return 0;
}
