// Fig. 3 + Table IV (+ the Section V-A breakdown): strong scaling of all six
// variants over the Table II graph roster.
//
// Fig. 3 in the paper plots execution time vs process count (16..4096) for
// every graph; Table IV derives the best speedup over Baseline and which
// variant achieved it. This harness reruns the full (graph x variant x
// ranks) grid at simulator scale, prints one time-series block per graph,
// then the Table IV summary, then (with --breakdown) the time-bucket split
// the paper obtained from HPCToolkit (34% community communication / 40%
// all-reduce / 22% compute on soc-friendster).
#include <iostream>
#include <limits>
#include <map>

#include "bench/harness.hpp"
#include "core/dist_louvain.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0, "surrogate size multiplier");
  const auto ranks = cli.get_int_list("ranks", {2, 4, 8}, "rank counts to sweep");
  const auto only = cli.get_string("graphs", "", "comma list of graph names (default all)");
  const bool breakdown = cli.get_flag("breakdown", false, "print the V-A time split");
  if (!cli.finish()) return 1;

  bench::banner("Fig. 3 + Table IV: strong scaling, all variants, all graphs",
                "NERSC Cori, 16-4096 processes, graphs of 42.7M-3.3B edges",
                "in-process ranks " + [&] {
                  std::string s;
                  for (auto r : ranks) s += std::to_string(r) + " ";
                  return s;
                }() + ", surrogates at scale " + util::TextTable::fmt(scale, 2));

  const auto variants = bench::paper_variants();

  struct Best {
    double baseline_low_p{0};
    double fastest{std::numeric_limits<double>::max()};
    std::string fastest_label;
  };
  std::map<std::string, Best> table4;

  for (const auto& info : gen::table2_catalog()) {
    if (!only.empty() && only.find(info.name) == std::string::npos) continue;
    const auto csr = bench::surrogate_csr(info.name, scale);
    std::cout << info.name << " (" << csr.num_vertices() << " vertices, "
              << csr.num_arcs() / 2 << " edges)\n";

    std::vector<std::string> headers{"variant"};
    for (const auto r : ranks) headers.push_back("p=" + std::to_string(r) + " (s)");
    headers.push_back("modularity");
    util::TextTable table(headers);

    auto& best = table4[info.name];
    for (const auto& cfg : variants) {
      std::vector<std::string> row{bench::label_of(cfg)};
      double modularity = 0;
      for (std::size_t i = 0; i < ranks.size(); ++i) {
        util::WallTimer timer;
        const auto result =
            core::dist_louvain_inprocess(static_cast<int>(ranks[i]), csr, cfg);
        const double seconds = timer.seconds();
        modularity = result.modularity;
        row.push_back(util::TextTable::fmt(seconds, 3));
        if (cfg.variant == core::Variant::kBaseline && i == 0)
          best.baseline_low_p = seconds;
        if (seconds < best.fastest) {
          best.fastest = seconds;
          best.fastest_label = bench::label_of(cfg);
        }
      }
      row.push_back(util::TextTable::fmt(modularity, 4));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // Table IV: best speedup over the low-process Baseline per graph.
  std::cout << "Table IV: versions yielding the best performance over Baseline\n";
  util::TextTable t4({"Graphs", "Best speedup", "Version"});
  for (const auto& [name, best] : table4) {
    if (best.fastest <= 0) continue;
    t4.add_row({name, util::TextTable::fmt(best.baseline_low_p / best.fastest, 2) + "x",
                best.fastest_label});
  }
  t4.print(std::cout);

  if (breakdown) {
    std::cout << "\nSection V-A time breakdown (Baseline on soc-friendster):\n";
    const auto csr = bench::surrogate_csr("soc-friendster", scale);
    const auto result = core::dist_louvain_inprocess(
        static_cast<int>(ranks.back()), csr, core::DistConfig::baseline());
    const auto& b = result.breakdown;
    const double total = b.total();
    util::TextTable split({"bucket", "seconds", "share", "paper share"});
    const double comm = b.ghost_exchange + b.community_info + b.delta_exchange;
    split.add_row({"community communication", util::TextTable::fmt(comm, 4),
                   util::TextTable::fmt(100 * comm / total, 1) + "%", "~34%"});
    split.add_row({"modularity all-reduce", util::TextTable::fmt(b.allreduce, 4),
                   util::TextTable::fmt(100 * b.allreduce / total, 1) + "%", "~40%"});
    split.add_row({"computation", util::TextTable::fmt(b.compute, 4),
                   util::TextTable::fmt(100 * b.compute / total, 1) + "%", "~22%"});
    split.add_row({"graph rebuild", util::TextTable::fmt(b.rebuild, 4),
                   util::TextTable::fmt(100 * b.rebuild / total, 1) + "%", "~1%"});
    split.print(std::cout);
  }
  return 0;
}
