// Table VI: ET(0.25) vs ET(0.25)+Threshold Cycling on soc-friendster across
// process counts. The paper measures a consistent ~10-12% gain from adding
// threshold cycling to ET.
#include <iostream>

#include "bench/harness.hpp"
#include "core/dist_louvain.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.6, "surrogate size multiplier");
  const auto ranks = cli.get_int_list("ranks", {2, 4, 8, 16}, "rank counts");
  const int repeats = static_cast<int>(cli.get_int("repeats", 3, "timing repeats (min)"));
  if (!cli.finish()) return 1;

  bench::banner("Table VI: ET(0.25) combined with Threshold Cycling (soc-friendster)",
                "256-4096 processes on Cori; ~10-12% gain from adding TC",
                "soc-friendster surrogate at scale " + util::TextTable::fmt(scale, 2));

  const auto csr = bench::surrogate_csr("soc-friendster", scale);
  std::cout << "graph: " << csr.num_vertices() << " vertices, " << csr.num_arcs() / 2
            << " edges\n\n";

  const auto et = core::DistConfig::et(0.25);
  auto et_tc = core::DistConfig::et(0.25);
  et_tc.add_threshold_cycling = true;

  auto timed = [&](int p, const core::DistConfig& cfg) {
    double best = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      util::WallTimer timer;
      (void)core::dist_louvain_inprocess(p, csr, cfg);
      const double s = timer.seconds();
      if (rep == 0 || s < best) best = s;
    }
    return best;
  };

  util::TextTable table({"Processes", "Execution time ET(0.25) (secs.)",
                         "Execution time ET(0.25)+TC (secs.)", "relative gain"});
  for (const auto p : ranks) {
    const double t_et = timed(static_cast<int>(p), et);
    const double t_et_tc = timed(static_cast<int>(p), et_tc);
    const double gain = t_et > 0 ? 100.0 * (t_et - t_et_tc) / t_et : 0;
    table.add_row({util::TextTable::fmt(p),
                   util::TextTable::fmt(t_et, 3),
                   util::TextTable::fmt(t_et_tc, 3),
                   util::TextTable::fmt(gain, 1) + "%"});
  }
  table.print(std::cout);
  return 0;
}
