// Thread-scaling micro-benchmarks for the per-rank compute pool
// (util/parallel.hpp): the raw primitives, the local-move decision scan they
// exist for, and the end-to-end engines at 1/2/4 threads on an R-MAT graph
// (the structure class where the scan dominates). Run on a multi-core host;
// the *_threads:N counters divide out to the local-move speedup the hybrid
// threading targets (>= 2x at 4 threads on the decision scan).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/dist_louvain.hpp"
#include "gen/rmat.hpp"
#include "graph/csr.hpp"
#include "louvain/shared.hpp"
#include "util/parallel.hpp"

namespace {

using namespace dlouvain;

const graph::Csr& rmat_csr() {
  static const graph::Csr csr = [] {
    gen::RmatParams p;
    p.scale = 13;  // 8192 vertices, ~60k edges: sweep-dominated, CI-sized
    p.edges_per_vertex = 8;
    p.seed = 7;
    const auto g = gen::rmat(p);
    return graph::from_edges(g.num_vertices, g.edges);
  }();
  return csr;
}

void BM_ParallelReduce(benchmark::State& state) {
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  const std::int64_t n = 1 << 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::parallel_reduce(&pool, n, [](std::int64_t begin, std::int64_t end) {
          double s = 0;
          for (std::int64_t i = begin; i < end; ++i)
            s += 1.0 / (1.0 + static_cast<double>(i));
          return s;
        }));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelReduce)->Arg(1)->Arg(2)->Arg(4);

// The hot kernel the pool was built for: one full local-move DECISION scan
// (neighbour-community weight gathering + best-gain selection) against a
// fixed singleton assignment. No apply step, so iterations are identical and
// the timing isolates the parallelized portion of the sweep.
void BM_LocalMoveScan(benchmark::State& state) {
  const auto& g = rmat_csr();
  const auto n = g.num_vertices();
  util::ThreadPool pool(static_cast<int>(state.range(0)));

  std::vector<CommunityId> community(static_cast<std::size_t>(n));
  std::vector<Weight> a(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    community[static_cast<std::size_t>(v)] = v;
    a[static_cast<std::size_t>(v)] = g.weighted_degree(v);
  }
  const Weight m = g.total_arc_weight() / 2;
  std::vector<CommunityId> proposed(static_cast<std::size_t>(n));

  for (auto _ : state) {
    util::parallel_for(&pool, n, [&](int, std::int64_t begin, std::int64_t end) {
      std::unordered_map<CommunityId, Weight> nbr_weight;
      for (std::int64_t v = begin; v < end; ++v) {
        const auto vi = static_cast<std::size_t>(v);
        const CommunityId own = community[vi];
        const Weight kv = g.weighted_degree(static_cast<VertexId>(v));
        nbr_weight.clear();
        for (const auto& e : g.neighbors(static_cast<VertexId>(v))) {
          if (e.dst == v) continue;
          nbr_weight[community[static_cast<std::size_t>(e.dst)]] += e.weight;
        }
        const auto own_it = nbr_weight.find(own);
        const Weight e_own = own_it == nbr_weight.end() ? 0.0 : own_it->second;
        const Weight a_own_less_v = a[static_cast<std::size_t>(own)] - kv;
        CommunityId best = own;
        Weight best_gain = 0;
        for (const auto& [target, e_target] : nbr_weight) {
          if (target == own) continue;
          const Weight gain =
              (e_target - e_own) / m -
              kv * (a[static_cast<std::size_t>(target)] - a_own_less_v) / (2 * m * m);
          if (gain > best_gain) {
            best = target;
            best_gain = gain;
          }
        }
        proposed[vi] = best;
      }
    });
    benchmark::DoNotOptimize(proposed.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_LocalMoveScan)->Arg(1)->Arg(2)->Arg(4);

void BM_SharedLouvain(benchmark::State& state) {
  const auto& g = rmat_csr();
  louvain::LouvainConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        louvain::louvain_shared(g, cfg, static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_SharedLouvain)->Arg(1)->Arg(2)->Arg(4);

void BM_DistLouvain(benchmark::State& state) {
  const auto& g = rmat_csr();
  core::DistConfig cfg = core::DistConfig::etc(0.25);
  cfg.record_iterations = false;
  cfg.threads_per_rank = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::dist_louvain_inprocess(2, g, cfg));
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_DistLouvain)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
