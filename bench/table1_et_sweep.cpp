// Table I: the early-termination alpha sweep on the shared-memory
// (Grappolo-style) implementation, inputs CNR (small world) and Channel
// (banded). For each alpha in {1.0, 0.9, ..., 0.0}: modularity, run time,
// and total iterations. The paper's headline: runtime drops as alpha -> 1
// (2x on CNR, 58x on Channel) with negligible modularity loss.
//
// Also regenerates the Section V-C follow-up: the DISTRIBUTED ET version on
// CNR across the same alpha range, where the paper measured a more modest
// ~6.7% runtime improvement (0.523 s -> 0.488 s) driven by an iteration
// reduction from 37 to 24.
#include <iostream>

#include "bench/harness.hpp"
#include "core/dist_louvain.hpp"
#include "gen/surrogate.hpp"
#include "louvain/shared.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 4.0, "surrogate size multiplier");
  const int threads = static_cast<int>(cli.get_int("threads", 8, "compute threads"));
  const int repeats = static_cast<int>(cli.get_int("repeats", 3, "timing repeats (min taken)"));
  const auto cli_ranks = cli.get_int("ranks", 4, "ranks for the distributed V-C section");
  if (!cli.finish()) return 1;

  bench::banner("Table I: adaptive early termination, shared-memory implementation",
                "8 cores of an Intel Xeon; CNR (325K vertices) and Channel (4.8M)",
                "1-core host, " + std::to_string(threads) + " compute threads, surrogate "
                "graphs at scale " + util::TextTable::fmt(scale, 2));

  for (const auto& info : gen::table1_catalog()) {
    const auto csr = bench::surrogate_csr(info.name, scale);
    std::cout << "Input: " << info.name << " (" << csr.num_vertices() << " vertices, "
              << csr.num_arcs() / 2 << " edges; paper modularity band "
              << util::TextTable::fmt(info.paper_modularity, 3) << ")\n";

    util::TextTable table({"alpha", "Modularity", "Time (in sec.)", "No. iterations"});
    for (int tenths = 10; tenths >= 0; --tenths) {
      const double alpha = tenths / 10.0;
      louvain::LouvainConfig cfg;
      cfg.early_termination = alpha > 0.0;
      cfg.et_alpha = alpha;

      double best_seconds = 0;
      louvain::LouvainResult result;
      for (int rep = 0; rep < repeats; ++rep) {
        util::WallTimer timer;
        result = louvain::louvain_shared(csr, cfg, threads);
        const double s = timer.seconds();
        if (rep == 0 || s < best_seconds) best_seconds = s;
      }
      table.add_row({util::TextTable::fmt(alpha, 1),
                     util::TextTable::fmt(result.modularity, 5),
                     util::TextTable::fmt(best_seconds, 3),
                     util::TextTable::fmt(result.total_iterations)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // Section V-C: the distributed ET version on CNR, alpha 0 -> 1 (paper:
  // ~6.7% time reduction, iterations 37 -> 24, modularity consistent to the
  // second decimal).
  const int ranks = static_cast<int>(cli_ranks);
  std::cout << "Section V-C: distributed ET on CNR (" << ranks << " ranks)\n";
  const auto cnr = bench::surrogate_csr("CNR", scale);
  util::TextTable dist_table({"alpha", "Modularity", "Time (in sec.)", "No. iterations"});
  for (int tenths = 10; tenths >= 0; --tenths) {
    const double alpha = tenths / 10.0;
    const auto cfg = alpha > 0.0 ? core::DistConfig::et(alpha) : core::DistConfig::baseline();
    double best_seconds = 0;
    core::DistResult result;
    for (int rep = 0; rep < repeats; ++rep) {
      util::WallTimer timer;
      result = core::dist_louvain_inprocess(ranks, cnr, cfg);
      const double s = timer.seconds();
      if (rep == 0 || s < best_seconds) best_seconds = s;
    }
    dist_table.add_row({util::TextTable::fmt(alpha, 1),
                        util::TextTable::fmt(result.modularity, 5),
                        util::TextTable::fmt(best_seconds, 3),
                        util::TextTable::fmt(result.total_iterations)});
  }
  dist_table.print(std::cout);
  return 0;
}
