// micro_rebalance: phase-boundary load re-balancer on/off ablation (ISSUE 10
// acceptance run).
//
// Runs the distributed engine on an R-MAT graph three ways -- rebalance off,
// rebalance on at the default threshold, and rebalance on at an unreachable
// threshold (the decline path) -- and emits the BENCH_PR10.json trail:
//
//   micro_rebalance --pr10_json=BENCH_PR10.json --pr10_scale=16 --pr10_ranks=8
//
// The trail records, per phase, the measured arc-load lambda of both runs and
// the boundary verdict (lambda_pre under the even split, lambda_post under
// the chosen split, and lambda_floor -- the structural limit max vertex /
// mean rank that NO partitioner can beat; on tiny late coarse graphs the
// floor itself exceeds any fixed target, and the exact min-max cut meeting it
// is the optimum). tools/check_bench_regression.py --emit pr10 drives this
// binary and asserts the lambda bar, the decline-path bitwise identity, the
// engaged-path determinism, and the decline-path wall overhead.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "dlouvain.hpp"
#include "gen/rmat.hpp"
#include "graph/csr.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

namespace dg = dlouvain::graph;
namespace gen = dlouvain::gen;
using dlouvain::Plan;
using dlouvain::Result;
using dlouvain::VertexId;

namespace {

struct Options {
  std::string json_path;
  int scale{16};
  int ranks{8};
  int threads{1};
  int reps{3};
  double threshold{1.5};
};

std::uint64_t bits_of(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// Bitwise result identity: assignment, modularity bit pattern, and the
/// algorithm traffic totals (messages and bytes are deterministic, so any
/// divergence shows up here before it shows up in quality).
bool same_bits(const Result& a, const Result& b) {
  return a.community == b.community &&
         bits_of(a.modularity) == bits_of(b.modularity) &&
         a.distributed->messages == b.distributed->messages &&
         a.distributed->bytes == b.distributed->bytes &&
         a.distributed->phases == b.distributed->phases;
}

/// Best-of-reps wall time; every rep must be bitwise identical to the first
/// (the determinism half of the contract rides the timing loop for free).
struct TimedRun {
  Result result;
  double wall{0};
  bool deterministic{true};
};

TimedRun timed(const Plan& plan, const dg::Csr& g, int reps) {
  TimedRun out;
  for (int rep = 0; rep < reps; ++rep) {
    const dlouvain::util::WallTimer timer;
    Result r = plan.run(g);
    const double s = timer.seconds();
    if (rep == 0) {
      out.result = std::move(r);
      out.wall = s;
    } else {
      out.deterministic = out.deterministic && same_bits(out.result, r);
      out.wall = std::min(out.wall, s);
    }
  }
  return out;
}

int run(const Options& opt) {
  gen::RmatParams params;
  params.scale = opt.scale;
  params.edges_per_vertex = 8;
  params.seed = 42;
  const auto g = gen::rmat(params);
  const auto csr = dg::from_edges(g.num_vertices, g.edges);

  std::cout << "== micro_rebalance: phase-boundary re-balancer on/off ==\n"
            << "graph:     rmat scale " << opt.scale << " (" << g.num_vertices
            << " vertices, " << g.edges.size() << " edges)\n"
            << "plan:      " << opt.ranks << " ranks x " << opt.threads
            << " thread(s), threshold " << opt.threshold << ", best of "
            << opt.reps << "\n\n";

  const auto base = Plan::distributed(opt.ranks).threads(opt.threads);
  auto on_plan = base;
  on_plan.rebalance(opt.threshold);
  // The decline path: enabled, but the threshold is unreachable, so every
  // boundary screens out at step 1. Must be bitwise identical to off.
  auto decline_plan = base;
  decline_plan.rebalance(1e9);
  const auto off = timed(base, csr, opt.reps);
  const auto on = timed(on_plan, csr, opt.reps);
  const auto decline = timed(decline_plan, csr, opt.reps);
  const bool decline_identical = same_bits(off.result, decline.result);

  const auto& doff = *off.result.distributed;
  const auto& don = *on.result.distributed;
  const double mod_delta = std::abs(off.result.modularity - on.result.modularity);

  std::cout << "wall off:      " << off.wall << " s (" << doff.phases << " phases)\n"
            << "wall on:       " << on.wall << " s (" << don.phases << " phases, "
            << don.rebalance.phases_engaged << "/" << don.rebalance.phases_evaluated
            << " boundaries engaged, " << don.rebalance.vertices_migrated
            << " vertices migrated)\n"
            << "wall decline:  " << decline.wall << " s (bitwise identical to off: "
            << (decline_identical ? "yes" : "NO") << ")\n"
            << "deterministic: off " << (off.deterministic ? "yes" : "NO") << ", on "
            << (on.deterministic ? "yes" : "NO") << "\n"
            << "modularity:    off " << off.result.modularity << " vs on "
            << on.result.modularity << " (|delta| " << mod_delta << ")\n\n";
  for (const auto& ph : don.phase_telemetry) {
    std::cout << "phase " << ph.phase << ": load_lambda " << ph.load_lambda;
    if (ph.rebalance.evaluated) {
      std::cout << "; boundary lambda " << ph.rebalance.lambda_pre << " -> "
                << ph.rebalance.lambda_post << " (floor "
                << ph.rebalance.lambda_floor << ", "
                << (ph.rebalance.engaged ? "engaged" : "declined") << ")";
    }
    std::cout << '\n';
  }

  if (!opt.json_path.empty()) {
    using dlouvain::core::json_number;
    namespace du = dlouvain::util;
    std::string out = "{\"schema\":\"dlouvain-bench/pr10\"";
    out += ",\"graph\":{\"family\":\"rmat\",\"scale\":" + std::to_string(opt.scale) +
           ",\"vertices\":" + std::to_string(g.num_vertices) +
           ",\"edges\":" + std::to_string(g.edges.size()) + "}";
    out += ",\"rebalance\":{\"ranks\":" + std::to_string(opt.ranks);
    out += ",\"threads\":" + std::to_string(opt.threads);
    out += ",\"reps\":" + std::to_string(opt.reps);
    out += ",\"threshold\":" + json_number(opt.threshold);
    out += ",\"wall_off\":" + json_number(off.wall);
    out += ",\"wall_on\":" + json_number(on.wall);
    out += ",\"wall_decline\":" + json_number(decline.wall);
    out += ",\"decline_identical\":";
    out += decline_identical ? "true" : "false";
    out += ",\"deterministic\":";
    out += (off.deterministic && on.deterministic && decline.deterministic)
               ? "true"
               : "false";
    out += ",\"phases_evaluated\":" + std::to_string(don.rebalance.phases_evaluated);
    out += ",\"phases_engaged\":" + std::to_string(don.rebalance.phases_engaged);
    out += ",\"vertices_migrated\":" +
           std::to_string(don.rebalance.vertices_migrated);
    out += ",\"modularity_off\":" + json_number(off.result.modularity);
    out += ",\"modularity_on\":" + json_number(on.result.modularity);
    out += ",\"modularity_delta\":" + json_number(mod_delta);
    out += ",\"messages_off\":" + std::to_string(doff.messages);
    out += ",\"messages_on\":" + std::to_string(don.messages);
    out += ",\"rebalance_messages\":" +
           std::to_string(don.counters[du::Counter::kRebalanceMessages]);
    out += ",\"rebalance_bytes\":" +
           std::to_string(don.counters[du::Counter::kRebalanceBytes]);
    out += ",\"phases_off\":[";
    for (std::size_t i = 0; i < doff.phase_telemetry.size(); ++i) {
      const auto& ph = doff.phase_telemetry[i];
      if (i != 0) out += ',';
      out += "{\"phase\":" + std::to_string(ph.phase);
      out += ",\"load_lambda\":" + json_number(ph.load_lambda);
      out += ",\"arcs\":" + std::to_string(ph.graph_arcs) + "}";
    }
    out += "],\"phases_on\":[";
    for (std::size_t i = 0; i < don.phase_telemetry.size(); ++i) {
      const auto& ph = don.phase_telemetry[i];
      if (i != 0) out += ',';
      out += "{\"phase\":" + std::to_string(ph.phase);
      out += ",\"load_lambda\":" + json_number(ph.load_lambda);
      out += ",\"arcs\":" + std::to_string(ph.graph_arcs);
      out += ",\"evaluated\":";
      out += ph.rebalance.evaluated ? "true" : "false";
      out += ",\"engaged\":";
      out += ph.rebalance.engaged ? "true" : "false";
      out += ",\"lambda_pre\":" + json_number(ph.rebalance.lambda_pre);
      out += ",\"lambda_post\":" + json_number(ph.rebalance.lambda_post);
      out += ",\"lambda_floor\":" + json_number(ph.rebalance.lambda_floor);
      out += ",\"vertices_migrated\":" +
             std::to_string(ph.rebalance.vertices_migrated) + "}";
    }
    out += "]}}";
    std::ofstream f(opt.json_path, std::ios::trunc);
    if (!f) {
      std::cerr << "micro_rebalance: cannot open " << opt.json_path << '\n';
      return 1;
    }
    f << out << '\n';
    std::cout << "\nwrote " << opt.json_path << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto grab = [&](const char* prefix, auto parse) {
      if (arg.rfind(prefix, 0) != 0) return false;
      parse(arg.substr(std::strlen(prefix)));
      return true;
    };
    const bool known =
        grab("--pr10_json=", [&](const std::string& v) { opt.json_path = v; }) ||
        grab("--pr10_scale=", [&](const std::string& v) { opt.scale = std::stoi(v); }) ||
        grab("--pr10_dist_scale=", [&](const std::string&) {}) ||  // driver compat
        grab("--pr10_reps=", [&](const std::string& v) { opt.reps = std::stoi(v); }) ||
        grab("--pr10_ranks=", [&](const std::string& v) { opt.ranks = std::stoi(v); }) ||
        grab("--pr10_threads=",
             [&](const std::string& v) { opt.threads = std::stoi(v); }) ||
        grab("--pr10_threshold=",
             [&](const std::string& v) { opt.threshold = std::stod(v); });
    if (!known) {
      std::cerr << "micro_rebalance: unknown flag " << arg << '\n';
      return 2;
    }
  }
  return run(opt);
}
