// micro_update: batch-update vs from-scratch timing for the streaming
// Session API (ISSUE 6 acceptance run).
//
// Opens a Session on an R-MAT graph, streams a few small edge batches
// (each touching well under 5% of the vertices once neighbourhoods are
// counted), and times each Session::update() against a from-scratch
// Plan::run() on the SAME final graph. Emits the BENCH_PR6.json trail:
//
//   micro_update --pr6_json=BENCH_PR6.json --pr6_scale=16 --pr6_ranks=8
//
// tools/check_bench_regression.py --emit pr6 drives this binary and asserts
// the speedup floor and the modularity tolerance on the emitted "update"
// section.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "dlouvain.hpp"
#include "gen/rmat.hpp"
#include "graph/csr.hpp"
#include "util/timer.hpp"

namespace dg = dlouvain::graph;
namespace gen = dlouvain::gen;
using dlouvain::Edge;
using dlouvain::EdgeBatch;
using dlouvain::Plan;
using dlouvain::VertexId;

namespace {

struct Options {
  std::string json_path;
  int scale{16};
  int ranks{8};
  int threads{1};
  int reps{3};
  int batches{3};
  int batch_edges{0};  ///< 0 = vertices / 2048, floor 8
  int degree_cap{32};  ///< batch endpoints must have degree <= cap
  bool verbose{false};  ///< per-phase timing dump after every update
};

int run(const Options& opt) {
  gen::RmatParams params;
  params.scale = opt.scale;
  params.edges_per_vertex = 8;
  params.seed = 42;
  const auto g = gen::rmat(params);
  const VertexId n = g.num_vertices;
  const int batch_edges =
      opt.batch_edges > 0 ? opt.batch_edges
                          : std::max<int>(8, static_cast<int>(n / 2048));

  // Current undirected edge set (each edge once), so removals are valid.
  auto base_csr = dg::from_edges(n, g.edges);
  std::vector<Edge> edges;
  for (VertexId v = 0; v < n; ++v) {
    for (const auto& e : base_csr.neighbors(v)) {
      if (e.dst >= v) edges.push_back(Edge{v, e.dst, e.weight});
    }
  }

  std::cout << "== micro_update: Session::update vs from-scratch ==\n"
            << "graph:   rmat scale " << opt.scale << " (" << n << " vertices, "
            << edges.size() << " edges)\n"
            << "plan:    " << opt.ranks << " ranks x " << opt.threads
            << " thread(s)\n"
            << "stream:  " << opt.batches << " batches x " << batch_edges
            << " edges (half add, half remove; endpoint degree <= "
            << opt.degree_cap << ")\n\n";

  // The acceptance scenario is a batch touching < 5% of the vertices once
  // neighbourhoods are counted. Uniform edge sampling on an R-MAT graph
  // lands on the power-law hubs, whose neighbourhoods alone are a double-
  // digit fraction of the graph -- so batch endpoints are rejection-sampled
  // to a degree cap, which models the common streaming case (fringe churn)
  // rather than the rare catastrophic one (a hub rewiring, which the
  // fallback path handles).
  std::vector<std::int32_t> degree(static_cast<std::size_t>(n), 0);
  for (const auto& e : edges) {
    ++degree[static_cast<std::size_t>(e.src)];
    ++degree[static_cast<std::size_t>(e.dst)];
  }
  const auto capped = [&](VertexId v) {
    return degree[static_cast<std::size_t>(v)] <= opt.degree_cap;
  };

  const auto plan = Plan::distributed(opt.ranks).threads(opt.threads);
  auto session = plan.open(base_csr);
  const double initial_modularity = session.result().modularity;

  std::mt19937_64 rng(7);
  std::vector<double> update_seconds;
  std::int64_t reactivated_total = 0;
  long reconverge_total = 0;
  for (int b = 0; b < opt.batches; ++b) {
    EdgeBatch batch;
    for (int i = 0; i < batch_edges / 2 && !edges.empty(); ++i) {
      auto pick = static_cast<std::size_t>(rng() % edges.size());
      for (int attempt = 0;
           attempt < 256 && !(capped(edges[pick].src) && capped(edges[pick].dst));
           ++attempt) {
        pick = static_cast<std::size_t>(rng() % edges.size());
      }
      batch.remove(edges[pick].src, edges[pick].dst);
      --degree[static_cast<std::size_t>(edges[pick].src)];
      --degree[static_cast<std::size_t>(edges[pick].dst)];
      edges[pick] = edges.back();
      edges.pop_back();
    }
    const auto pick_vertex = [&]() {
      auto v = static_cast<VertexId>(rng() % static_cast<std::uint64_t>(n));
      for (int attempt = 0; attempt < 256 && !capped(v); ++attempt) {
        v = static_cast<VertexId>(rng() % static_cast<std::uint64_t>(n));
      }
      return v;
    };
    for (int i = 0; i < batch_edges - batch_edges / 2; ++i) {
      const auto u = pick_vertex();
      auto v = pick_vertex();
      if (v == u) v = (v + 1) % n;
      batch.add(u, v, 1.0);
      ++degree[static_cast<std::size_t>(u)];
      ++degree[static_cast<std::size_t>(v)];
      edges.push_back(Edge{std::min(u, v), std::max(u, v), 1.0});
    }
    const auto stats = session.update(batch);
    update_seconds.push_back(stats.seconds);
    reactivated_total += stats.vertices_reactivated;
    reconverge_total += stats.reconverge_iterations;
    std::cout << "batch " << b << ": " << stats.seconds << " s, "
              << stats.vertices_reactivated << " reactivated, "
              << stats.reconverge_iterations << " warm iterations"
              << (stats.fell_back_to_full ? " [FELL BACK TO FULL]" : "") << '\n';
    if (opt.verbose && session.result().distributed) {
      double phases_total = 0;
      for (const auto& ph : session.result().distributed->phase_telemetry) {
        phases_total += ph.seconds;
        std::cout << "    phase " << ph.phase << ": " << ph.seconds << " s, "
                  << ph.graph_vertices << " vertices, " << ph.iterations
                  << " iterations (compute " << ph.breakdown.compute
                  << ", ghost " << ph.breakdown.ghost_exchange << ", info "
                  << ph.breakdown.community_info << ", delta "
                  << ph.breakdown.delta_exchange << ", allreduce "
                  << ph.breakdown.allreduce << ", rebuild "
                  << ph.breakdown.rebuild << ")\n";
      }
      std::cout << "    phases total " << phases_total
                << " s; apply+overhead " << (stats.seconds - phases_total)
                << " s\n";
    }
  }
  // Note: duplicate adds may have left parallel entries in `edges`; the CSR
  // build coalesces them exactly like Session::update does.
  const auto final_csr = dg::from_edges(n, edges);

  double scratch_seconds = 0;
  dlouvain::Result scratch;
  for (int rep = 0; rep < opt.reps; ++rep) {
    const dlouvain::util::WallTimer timer;
    scratch = plan.run(final_csr);
    const double s = timer.seconds();
    scratch_seconds = rep == 0 ? s : std::min(scratch_seconds, s);
  }

  const double update_mean =
      std::accumulate(update_seconds.begin(), update_seconds.end(), 0.0) /
      static_cast<double>(update_seconds.size());
  const double speedup = update_mean > 0 ? scratch_seconds / update_mean : 0;
  // One-sided: the tolerance bounds how far the warm result may land BELOW
  // the from-scratch one. Warm-starting from a converged partition routinely
  // lands above scratch quality; that is not drift.
  const double mod_delta =
      std::max(0.0, scratch.modularity - session.result().modularity);
  const double touched_fraction =
      static_cast<double>(reactivated_total) /
      (static_cast<double>(n) * static_cast<double>(opt.batches));
  const auto fallbacks = session.result().updates.fallback_to_full;

  std::cout << "\nupdate mean:   " << update_mean << " s\n"
            << "from-scratch:  " << scratch_seconds << " s (best of " << opt.reps
            << ")\n"
            << "speedup:       " << speedup << "x\n"
            << "modularity:    session " << session.result().modularity
            << " vs scratch " << scratch.modularity << " (drift below scratch "
            << mod_delta << ")\n"
            << "touched/batch: " << 100.0 * touched_fraction << "% of vertices\n"
            << "fallbacks:     " << fallbacks << '\n';

  if (!opt.json_path.empty()) {
    using dlouvain::core::json_number;
    std::string out = "{\"schema\":\"dlouvain-bench/pr6\"";
    out += ",\"graph\":{\"family\":\"rmat\",\"scale\":" + std::to_string(opt.scale) +
           ",\"vertices\":" + std::to_string(n) +
           ",\"edges\":" + std::to_string(edges.size()) + "}";
    out += ",\"update\":{\"ranks\":" + std::to_string(opt.ranks);
    out += ",\"threads\":" + std::to_string(opt.threads);
    out += ",\"batches\":" + std::to_string(opt.batches);
    out += ",\"batch_edges\":" + std::to_string(batch_edges);
    out += ",\"degree_cap\":" + std::to_string(opt.degree_cap);
    out += ",\"update_seconds\":[";
    for (std::size_t i = 0; i < update_seconds.size(); ++i) {
      if (i != 0) out += ',';
      out += json_number(update_seconds[i]);
    }
    out += "],\"update_seconds_mean\":" + json_number(update_mean);
    out += ",\"scratch_seconds\":" + json_number(scratch_seconds);
    out += ",\"speedup\":" + json_number(speedup);
    out += ",\"initial_modularity\":" + json_number(initial_modularity);
    out += ",\"session_modularity\":" + json_number(session.result().modularity);
    out += ",\"scratch_modularity\":" + json_number(scratch.modularity);
    out += ",\"modularity_delta\":" + json_number(mod_delta);
    out += ",\"touched_fraction\":" + json_number(touched_fraction);
    out += ",\"vertices_reactivated\":" + std::to_string(reactivated_total);
    out += ",\"reconverge_iterations\":" + std::to_string(reconverge_total);
    out += ",\"fallbacks\":" + std::to_string(fallbacks);
    out += "}}";
    std::ofstream f(opt.json_path, std::ios::trunc);
    if (!f) {
      std::cerr << "micro_update: cannot open " << opt.json_path << '\n';
      return 1;
    }
    f << out << '\n';
    std::cout << "\nwrote " << opt.json_path << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto grab = [&](const char* prefix, auto parse) {
      if (arg.rfind(prefix, 0) != 0) return false;
      parse(arg.substr(std::strlen(prefix)));
      return true;
    };
    const bool known =
        grab("--pr6_json=", [&](const std::string& v) { opt.json_path = v; }) ||
        grab("--pr6_scale=", [&](const std::string& v) { opt.scale = std::stoi(v); }) ||
        grab("--pr6_dist_scale=", [&](const std::string&) {}) ||  // driver compat
        grab("--pr6_reps=", [&](const std::string& v) { opt.reps = std::stoi(v); }) ||
        grab("--pr6_ranks=", [&](const std::string& v) { opt.ranks = std::stoi(v); }) ||
        grab("--pr6_threads=", [&](const std::string& v) { opt.threads = std::stoi(v); }) ||
        grab("--pr6_batches=", [&](const std::string& v) { opt.batches = std::stoi(v); }) ||
        grab("--pr6_batch_edges=",
             [&](const std::string& v) { opt.batch_edges = std::stoi(v); }) ||
        grab("--pr6_degree_cap=",
             [&](const std::string& v) { opt.degree_cap = std::stoi(v); }) ||
        grab("--pr6_verbose=",
             [&](const std::string& v) { opt.verbose = std::stoi(v) != 0; });
    if (!known) {
      std::cerr << "micro_update: unknown flag " << arg << '\n';
      return 2;
    }
  }
  return run(opt);
}
