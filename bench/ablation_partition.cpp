// Ablation for DESIGN.md decision #2: the paper's edge-balanced 1D input
// distribution vs a naive vertex-balanced split. On skewed-degree graphs the
// edge-balanced split evens out per-rank arc counts (the compute load) at
// the cost of uneven vertex counts; this harness reports both balances, the
// ghost footprint, and end-to-end Louvain time under each policy.
#include <algorithm>
#include <iostream>

#include "bench/harness.hpp"
#include "comm/world.hpp"
#include "core/dist_louvain.hpp"
#include "graph/dist_graph.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace dlouvain;

  util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 0.5, "surrogate size multiplier");
  const int ranks = static_cast<int>(cli.get_int("ranks", 4, "in-process ranks"));
  if (!cli.finish()) return 1;

  bench::banner("Ablation: edge-balanced vs vertex-balanced 1D partition",
                "the paper distributes so 'each process receives roughly the same "
                "number of edges'",
                std::to_string(ranks) + " ranks, surrogates at scale " +
                    util::TextTable::fmt(scale, 2));

  util::TextTable table({"graph", "policy", "max/mean arcs", "max/mean vertices",
                         "ghosts total", "louvain (s)", "modularity"});

  for (const std::string name : {"soc-friendster", "com-orkut", "channel"}) {
    const auto csr = bench::surrogate_csr(name, scale);
    for (const auto kind :
         {graph::PartitionKind::kEvenEdges, graph::PartitionKind::kEvenVertices}) {
      std::vector<EdgeId> arcs(static_cast<std::size_t>(ranks));
      std::vector<VertexId> verts(static_cast<std::size_t>(ranks));
      std::int64_t ghosts_total = 0;
      comm::run(ranks, [&](comm::Comm& comm) {
        const auto dist = graph::DistGraph::from_replicated(comm, csr, kind);
        arcs[static_cast<std::size_t>(comm.rank())] = dist.local().num_arcs();
        verts[static_cast<std::size_t>(comm.rank())] = dist.local_count();
        const auto total = comm.allreduce_sum<std::int64_t>(
            static_cast<std::int64_t>(dist.ghosts().size()));
        if (comm.is_root()) ghosts_total = total;
      });

      util::WallTimer timer;
      const auto result = core::dist_louvain_inprocess(ranks, csr, {}, kind);
      const double seconds = timer.seconds();

      const double arc_mean =
          static_cast<double>(std::accumulate(arcs.begin(), arcs.end(), EdgeId{0})) / ranks;
      const double vert_mean =
          static_cast<double>(std::accumulate(verts.begin(), verts.end(), VertexId{0})) /
          ranks;
      const double arc_imb =
          arc_mean > 0 ? static_cast<double>(*std::max_element(arcs.begin(), arcs.end())) / arc_mean : 0;
      const double vert_imb =
          vert_mean > 0
              ? static_cast<double>(*std::max_element(verts.begin(), verts.end())) / vert_mean
              : 0;

      table.add_row({name,
                     kind == graph::PartitionKind::kEvenEdges ? "even-edges" : "even-vertices",
                     util::TextTable::fmt(arc_imb, 3),
                     util::TextTable::fmt(vert_imb, 3),
                     util::TextTable::fmt(ghosts_total),
                     util::TextTable::fmt(seconds, 3),
                     util::TextTable::fmt(result.modularity, 4)});
    }
  }
  table.print(std::cout);
  return 0;
}
