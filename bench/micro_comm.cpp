// Micro-benchmarks for the message-passing substrate: latency/throughput of
// the collectives the Louvain iteration leans on (all-reduce dominates the
// paper's V-A profile at 40%).
#include <benchmark/benchmark.h>

#include "comm/comm.hpp"
#include "comm/world.hpp"

namespace {

using dlouvain::comm::Comm;
using dlouvain::comm::run;

void BM_Barrier(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int rounds_per_run = 64;
  long total = 0;
  for (auto _ : state) {
    run(p, [&](Comm& comm) {
      for (int i = 0; i < rounds_per_run; ++i) comm.barrier();
    });
    total += rounds_per_run;
  }
  state.SetItemsProcessed(total);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_AllreduceSum(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int rounds_per_run = 64;
  long total = 0;
  for (auto _ : state) {
    run(p, [&](Comm& comm) {
      double acc = comm.rank();
      for (int i = 0; i < rounds_per_run; ++i)
        acc = comm.allreduce_sum(acc * 0.5);
      benchmark::DoNotOptimize(acc);
    });
    total += rounds_per_run;
  }
  state.SetItemsProcessed(total);
}
BENCHMARK(BM_AllreduceSum)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Alltoallv(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t payload = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run(p, [&](Comm& comm) {
      std::vector<std::vector<std::int64_t>> outbox(static_cast<std::size_t>(p));
      for (auto& box : outbox) box.assign(payload, comm.rank());
      auto inbox = comm.alltoallv<std::int64_t>(std::move(outbox));
      benchmark::DoNotOptimize(inbox);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * p * p *
                          static_cast<std::int64_t>(payload) * 8);
}
BENCHMARK(BM_Alltoallv)->Args({4, 64})->Args({4, 4096})->Args({8, 64})->Args({8, 4096});

void BM_PointToPointPingPong(benchmark::State& state) {
  const int rounds_per_run = 256;
  for (auto _ : state) {
    run(2, [&](Comm& comm) {
      for (int i = 0; i < rounds_per_run; ++i) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 0, i);
          benchmark::DoNotOptimize(comm.recv_value<int>(1, 1));
        } else {
          benchmark::DoNotOptimize(comm.recv_value<int>(0, 0));
          comm.send_value<int>(0, 1, i);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds_per_run);
}
BENCHMARK(BM_PointToPointPingPong);

}  // namespace

BENCHMARK_MAIN();
