// Micro-benchmarks for the message-passing substrate: latency/throughput of
// the collectives the Louvain iteration leans on (all-reduce dominates the
// paper's V-A profile at 40%).
//
// Doubles as the PR7 ARQ-overhead emitter (ISSUE 7 acceptance run): with any
// --pr7_* flag the binary skips Google Benchmark and instead times a fixed
// deterministic ring stream four ways -- ARQ off on a clean wire (baseline),
// ARQ on clean, ARQ on with 0.1% message loss, ARQ on with 0.1% payload
// corruption -- and writes the BENCH_PR7.json trail:
//
//   micro_comm --pr7_json=BENCH_PR7.json --pr7_scale=12 --pr7_ranks=4
//
// tools/check_bench_regression.py --emit pr7 drives this binary and asserts
// the structural contracts on the emitted "arq" section: all four runs
// produce identical bits, every injected fault is repaired by a
// retransmission, and nothing escalates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "comm/fault.hpp"
#include "comm/world.hpp"
#include "core/metrics.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

namespace {

using dlouvain::comm::Comm;
using dlouvain::comm::run;

void BM_Barrier(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int rounds_per_run = 64;
  long total = 0;
  for (auto _ : state) {
    run(p, [&](Comm& comm) {
      for (int i = 0; i < rounds_per_run; ++i) comm.barrier();
    });
    total += rounds_per_run;
  }
  state.SetItemsProcessed(total);
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_AllreduceSum(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const int rounds_per_run = 64;
  long total = 0;
  for (auto _ : state) {
    run(p, [&](Comm& comm) {
      double acc = comm.rank();
      for (int i = 0; i < rounds_per_run; ++i)
        acc = comm.allreduce_sum(acc * 0.5);
      benchmark::DoNotOptimize(acc);
    });
    total += rounds_per_run;
  }
  state.SetItemsProcessed(total);
}
BENCHMARK(BM_AllreduceSum)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_Alltoallv(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t payload = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    run(p, [&](Comm& comm) {
      std::vector<std::vector<std::int64_t>> outbox(static_cast<std::size_t>(p));
      for (auto& box : outbox) box.assign(payload, comm.rank());
      auto inbox = comm.alltoallv<std::int64_t>(std::move(outbox));
      benchmark::DoNotOptimize(inbox);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * p * p *
                          static_cast<std::int64_t>(payload) * 8);
}
BENCHMARK(BM_Alltoallv)->Args({4, 64})->Args({4, 4096})->Args({8, 64})->Args({8, 4096});

void BM_PointToPointPingPong(benchmark::State& state) {
  const int rounds_per_run = 256;
  for (auto _ : state) {
    run(2, [&](Comm& comm) {
      for (int i = 0; i < rounds_per_run; ++i) {
        if (comm.rank() == 0) {
          comm.send_value<int>(1, 0, i);
          benchmark::DoNotOptimize(comm.recv_value<int>(1, 1));
        } else {
          benchmark::DoNotOptimize(comm.recv_value<int>(0, 0));
          comm.send_value<int>(0, 1, i);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds_per_run);
}
BENCHMARK(BM_PointToPointPingPong);

// --- PR7 trail: rung-1 ARQ overhead on a deterministic ring stream ---

namespace dc = dlouvain::comm;
namespace du = dlouvain::util;

struct Pr7Options {
  std::string json_path;
  int ranks{4};
  int messages{2048};    ///< per rank (one ring stream each)
  int payload_words{64}; ///< std::int64_t words per message
  int reps{3};           ///< best-of wall time per scenario
  int retransmit_max{8};
  double backoff_ms{0.2};
  double loss_rate{0.001};
  double corrupt_rate{0.001};
  std::uint64_t seed{1};
};

struct Pr7Scenario {
  double seconds{0};
  std::uint64_t checksum{0};
  std::int64_t nacks{0};
  std::int64_t retransmits{0};
  std::int64_t escalations{0};
  std::int64_t backoff_ms{0};
  std::int64_t injected_losses{0};
  std::int64_t injected_corruptions{0};
};

/// One scenario: every rank streams `messages` payloads around the ring
/// (send to rank+1, receive from rank-1, accumulate an order-sensitive hash
/// of the received words). Wall time is best-of-reps; the checksum and the
/// ladder counters are identical across reps because fault fates are a pure
/// function of (seed, communication pattern), so the last rep's values stand
/// for all of them.
Pr7Scenario run_pr7_scenario(const Pr7Options& opt, bool arq,
                             const dc::FaultPlan* faults) {
  Pr7Scenario out;
  for (int rep = 0; rep < opt.reps; ++rep) {
    dc::RunOptions options;
    options.timeout_seconds = 120;  // a wedged scenario must fail, not hang
    if (arq) {
      options.retransmit_max = opt.retransmit_max;
      options.retransmit_backoff_ms = opt.backoff_ms;
    }
    std::shared_ptr<dc::FaultInjector> injector;
    if (faults != nullptr) {
      injector = std::make_shared<dc::FaultInjector>(*faults);
      options.faults = injector;
    }
    auto metrics = std::make_shared<du::MetricsRegistry>(opt.ranks);
    options.metrics = metrics;

    std::vector<std::uint64_t> sums(static_cast<std::size_t>(opt.ranks), 0);
    const du::WallTimer timer;
    run(
        opt.ranks,
        [&](Comm& comm) {
          const int p = comm.size();
          const int next = (comm.rank() + 1) % p;
          const int prev = (comm.rank() + p - 1) % p;
          std::vector<std::int64_t> payload(
              static_cast<std::size_t>(opt.payload_words));
          std::uint64_t acc = 0;
          for (int i = 0; i < opt.messages; ++i) {
            for (int w = 0; w < opt.payload_words; ++w) {
              payload[static_cast<std::size_t>(w)] =
                  (static_cast<std::int64_t>(comm.rank()) << 40) ^
                  (static_cast<std::int64_t>(i) << 16) ^ w;
            }
            comm.send(next, /*tag=*/1, payload);
            const auto in = comm.recv<std::int64_t>(prev, /*tag=*/1);
            for (const auto v : in)
              acc = acc * 1099511628211ULL + static_cast<std::uint64_t>(v);
          }
          sums[static_cast<std::size_t>(comm.rank())] = acc;
        },
        options);
    const double s = timer.seconds();
    if (rep == 0 || s < out.seconds) out.seconds = s;

    std::uint64_t checksum = 0;
    for (const auto v : sums) checksum = checksum * 1099511628211ULL + v;
    out.checksum = checksum;
    const auto total = metrics->total();
    out.nacks = total[du::Counter::kArqNacks];
    out.retransmits = total[du::Counter::kArqRetransmits];
    out.escalations = total[du::Counter::kArqEscalations];
    out.backoff_ms = total[du::Counter::kArqBackoffMs];
    if (injector) {
      out.injected_losses = injector->lost.load();
      out.injected_corruptions = injector->corrupted.load();
    }
  }
  return out;
}

int run_pr7(const Pr7Options& opt) {
  using dlouvain::core::json_number;
  std::cout << "== micro_comm: rung-1 ARQ overhead ==\n"
            << "stream:  " << opt.ranks << " ranks x " << opt.messages
            << " messages x " << opt.payload_words << " words (best of "
            << opt.reps << ")\n"
            << "budget:  retransmit_max " << opt.retransmit_max << ", backoff "
            << opt.backoff_ms << " ms\n"
            << "faults:  loss " << opt.loss_rate << ", corruption "
            << opt.corrupt_rate << " (seed " << opt.seed << ")\n\n";

  const auto baseline = run_pr7_scenario(opt, /*arq=*/false, nullptr);
  const auto clean = run_pr7_scenario(opt, /*arq=*/true, nullptr);
  dc::FaultPlan loss_plan;
  loss_plan.with_seed(opt.seed).lose(opt.loss_rate);
  const auto loss = run_pr7_scenario(opt, /*arq=*/true, &loss_plan);
  dc::FaultPlan corrupt_plan;
  corrupt_plan.with_seed(opt.seed).corrupt(opt.corrupt_rate);
  const auto corrupt = run_pr7_scenario(opt, /*arq=*/true, &corrupt_plan);

  const bool identical = clean.checksum == baseline.checksum &&
                         loss.checksum == baseline.checksum &&
                         corrupt.checksum == baseline.checksum;
  const auto overhead = [&](double s) {
    return baseline.seconds > 0 ? s / baseline.seconds - 1.0 : 0.0;
  };
  const std::int64_t escalations = loss.escalations + corrupt.escalations;

  std::cout << "arq off, clean wire:  " << baseline.seconds << " s (baseline)\n"
            << "arq on,  clean wire:  " << clean.seconds << " s ("
            << 100.0 * overhead(clean.seconds) << "% overhead)\n"
            << "arq on,  " << 100.0 * opt.loss_rate
            << "% loss:  " << loss.seconds << " s ("
            << 100.0 * overhead(loss.seconds) << "% overhead, "
            << loss.injected_losses << " drops, " << loss.retransmits
            << " retransmits)\n"
            << "arq on,  " << 100.0 * opt.corrupt_rate
            << "% corruption: " << corrupt.seconds << " s ("
            << 100.0 * overhead(corrupt.seconds) << "% overhead, "
            << corrupt.injected_corruptions << " corruptions, "
            << corrupt.retransmits << " retransmits)\n"
            << "identical results:    " << (identical ? "yes" : "NO")
            << ", escalations: " << escalations << '\n';

  if (!opt.json_path.empty()) {
    std::string out = "{\"schema\":\"dlouvain-bench/pr7\"";
    out += ",\"arq\":{\"ranks\":" + std::to_string(opt.ranks);
    out += ",\"messages_per_rank\":" + std::to_string(opt.messages);
    out += ",\"payload_words\":" + std::to_string(opt.payload_words);
    out += ",\"reps\":" + std::to_string(opt.reps);
    out += ",\"retransmit_max\":" + std::to_string(opt.retransmit_max);
    out += ",\"backoff_ms\":" + json_number(opt.backoff_ms);
    out += ",\"loss_rate\":" + json_number(opt.loss_rate);
    out += ",\"corrupt_rate\":" + json_number(opt.corrupt_rate);
    out += ",\"seed\":" + std::to_string(opt.seed);
    out += ",\"baseline_seconds\":" + json_number(baseline.seconds);
    out += ",\"clean_seconds\":" + json_number(clean.seconds);
    out += ",\"loss_seconds\":" + json_number(loss.seconds);
    out += ",\"corrupt_seconds\":" + json_number(corrupt.seconds);
    out += ",\"overhead_clean\":" + json_number(overhead(clean.seconds));
    out += ",\"overhead_loss\":" + json_number(overhead(loss.seconds));
    out += ",\"overhead_corrupt\":" + json_number(overhead(corrupt.seconds));
    out += ",\"injected_losses\":" + std::to_string(loss.injected_losses);
    out += ",\"injected_corruptions\":" +
           std::to_string(corrupt.injected_corruptions);
    out += ",\"nacks_loss\":" + std::to_string(loss.nacks);
    out += ",\"retransmits_loss\":" + std::to_string(loss.retransmits);
    out += ",\"nacks_corrupt\":" + std::to_string(corrupt.nacks);
    out += ",\"retransmits_corrupt\":" + std::to_string(corrupt.retransmits);
    out += ",\"backoff_ms_loss\":" + std::to_string(loss.backoff_ms);
    out += ",\"escalations\":" + std::to_string(escalations);
    out += std::string(",\"identical\":") + (identical ? "true" : "false");
    out += "}}";
    std::ofstream f(opt.json_path, std::ios::trunc);
    if (!f) {
      std::cerr << "micro_comm: cannot open " << opt.json_path << '\n';
      return 1;
    }
    f << out << '\n';
    std::cout << "\nwrote " << opt.json_path << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Pr7Options opt;
  bool pr7 = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto grab = [&](const char* prefix, auto parse) {
      if (arg.rfind(prefix, 0) != 0) return false;
      parse(arg.substr(std::strlen(prefix)));
      return true;
    };
    const bool known =
        grab("--pr7_json=", [&](const std::string& v) { opt.json_path = v; }) ||
        // The driver's --scale is log2 of the TOTAL per-rank stream volume;
        // scale 12 = 2048 messages per rank, matching the other trails' knob.
        grab("--pr7_scale=",
             [&](const std::string& v) {
               opt.messages = 1 << std::max(1, std::stoi(v) - 1);
             }) ||
        grab("--pr7_dist_scale=", [](const std::string&) {}) ||  // driver compat
        grab("--pr7_reps=", [&](const std::string& v) { opt.reps = std::stoi(v); }) ||
        grab("--pr7_ranks=", [&](const std::string& v) { opt.ranks = std::stoi(v); }) ||
        grab("--pr7_messages=",
             [&](const std::string& v) { opt.messages = std::stoi(v); }) ||
        grab("--pr7_payload_words=",
             [&](const std::string& v) { opt.payload_words = std::stoi(v); }) ||
        grab("--pr7_retransmit=",
             [&](const std::string& v) { opt.retransmit_max = std::stoi(v); }) ||
        grab("--pr7_backoff_ms=",
             [&](const std::string& v) { opt.backoff_ms = std::stod(v); }) ||
        grab("--pr7_loss=",
             [&](const std::string& v) { opt.loss_rate = std::stod(v); }) ||
        grab("--pr7_corrupt=",
             [&](const std::string& v) { opt.corrupt_rate = std::stod(v); }) ||
        grab("--pr7_seed=", [&](const std::string& v) {
          opt.seed = std::stoull(v);
        });
    if (known) {
      pr7 = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (pr7) {
    if (passthrough.size() > 1) {
      std::cerr << "micro_comm: cannot mix --pr7_* with benchmark flags ("
                << passthrough[1] << ")\n";
      return 2;
    }
    return run_pr7(opt);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
